#include "core/kernels.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace kreg {

std::string_view to_string(KernelType kernel) noexcept {
  switch (kernel) {
    case KernelType::kEpanechnikov:
      return "epanechnikov";
    case KernelType::kUniform:
      return "uniform";
    case KernelType::kTriangular:
      return "triangular";
    case KernelType::kBiweight:
      return "biweight";
    case KernelType::kTriweight:
      return "triweight";
    case KernelType::kCosine:
      return "cosine";
    case KernelType::kGaussian:
      return "gaussian";
  }
  return "unknown";
}

double kernel_value(KernelType kernel, double u) noexcept {
  const double a = std::abs(u);
  switch (kernel) {
    case KernelType::kEpanechnikov:
      return a <= 1.0 ? 0.75 * (1.0 - u * u) : 0.0;
    case KernelType::kUniform:
      return a <= 1.0 ? 0.5 : 0.0;
    case KernelType::kTriangular:
      return a <= 1.0 ? 1.0 - a : 0.0;
    case KernelType::kBiweight:
      if (a > 1.0) return 0.0;
      {
        const double w = 1.0 - u * u;
        return (15.0 / 16.0) * w * w;
      }
    case KernelType::kTriweight:
      if (a > 1.0) return 0.0;
      {
        const double w = 1.0 - u * u;
        return (35.0 / 32.0) * w * w * w;
      }
    case KernelType::kCosine:
      return a <= 1.0
                 ? (std::numbers::pi / 4.0) *
                       std::cos(std::numbers::pi * u / 2.0)
                 : 0.0;
    case KernelType::kGaussian:
      return std::exp(-0.5 * u * u) / std::sqrt(2.0 * std::numbers::pi);
  }
  return 0.0;
}

bool is_compact(KernelType kernel) noexcept {
  return kernel != KernelType::kGaussian;
}

double roughness(KernelType kernel) noexcept {
  switch (kernel) {
    case KernelType::kEpanechnikov:
      return 3.0 / 5.0;
    case KernelType::kUniform:
      return 1.0 / 2.0;
    case KernelType::kTriangular:
      return 2.0 / 3.0;
    case KernelType::kBiweight:
      return 5.0 / 7.0;
    case KernelType::kTriweight:
      return 350.0 / 429.0;
    case KernelType::kCosine:
      return std::numbers::pi * std::numbers::pi / 16.0;
    case KernelType::kGaussian:
      return 1.0 / (2.0 * std::sqrt(std::numbers::pi));
  }
  return 0.0;
}

double second_moment(KernelType kernel) noexcept {
  switch (kernel) {
    case KernelType::kEpanechnikov:
      return 1.0 / 5.0;
    case KernelType::kUniform:
      return 1.0 / 3.0;
    case KernelType::kTriangular:
      return 1.0 / 6.0;
    case KernelType::kBiweight:
      return 1.0 / 7.0;
    case KernelType::kTriweight:
      return 1.0 / 9.0;
    case KernelType::kCosine:
      return 1.0 - 8.0 / (std::numbers::pi * std::numbers::pi);
    case KernelType::kGaussian:
      return 1.0;
  }
  return 0.0;
}

bool is_sweepable(KernelType kernel) noexcept {
  switch (kernel) {
    case KernelType::kEpanechnikov:
    case KernelType::kUniform:
    case KernelType::kTriangular:
    case KernelType::kBiweight:
    case KernelType::kTriweight:
      return true;
    case KernelType::kCosine:    // compact but not polynomial in |u|
    case KernelType::kGaussian:  // unbounded support; no sort needed at all
      return false;
  }
  return false;
}

SweepPolynomial sweep_polynomial(KernelType kernel) {
  SweepPolynomial p;
  switch (kernel) {
    case KernelType::kEpanechnikov:
      p.coeff[0] = 0.75;
      p.coeff[2] = -0.75;
      p.max_power = 2;
      return p;
    case KernelType::kUniform:
      p.coeff[0] = 0.5;
      p.max_power = 0;
      return p;
    case KernelType::kTriangular:
      p.coeff[0] = 1.0;
      p.coeff[1] = -1.0;
      p.max_power = 1;
      return p;
    case KernelType::kBiweight:
      p.coeff[0] = 15.0 / 16.0;
      p.coeff[2] = -15.0 / 8.0;
      p.coeff[4] = 15.0 / 16.0;
      p.max_power = 4;
      return p;
    case KernelType::kTriweight:
      p.coeff[0] = 35.0 / 32.0;
      p.coeff[2] = -105.0 / 32.0;
      p.coeff[4] = 105.0 / 32.0;
      p.coeff[6] = -35.0 / 32.0;
      p.max_power = 6;
      return p;
    case KernelType::kCosine:
    case KernelType::kGaussian:
      break;
  }
  throw std::invalid_argument("sweep_polynomial: kernel '" +
                              std::string(to_string(kernel)) +
                              "' is not sweepable");
}

}  // namespace kreg
