#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string_view>

namespace kreg {

/// How a window-sweep backend tiles the bandwidth grid through memory.
///
/// The window sweep keeps one n×k partial matrix (LSCV partials on the KDE
/// path, squared residuals on the regression path) resident while it runs.
/// That matrix — not time — is what caps the feasible sample size on the
/// device, the same wall the paper's Tesla S10 hit at n = 20,000. Streaming
/// mode tiles the grid into k-blocks: one n×k_block buffer stays resident,
/// blocks of bandwidths stream through it, each block is reduced to its
/// per-bandwidth sums immediately, and only the k score totals plus a
/// running argmin survive on the host. Per-observation window state (the
/// two pointers and the moment sums) is carried across blocks in O(n)
/// buffers, so the streamed sweep performs the *same* arithmetic in the
/// same order as the resident sweep — profiles agree bitwise.
///
/// n-blocks remove the remaining O(n) resident state: observations are
/// tiled into n-blocks, and each block uploads only a *slab* of the sorted
/// arrays — the block itself plus a halo wide enough to cover the block's
/// largest admission window at h_max (computed host-side by binary search
/// on the sorted X, so no device out-of-core sort is needed). The block's
/// pointers and moment sums live in O(n_block) buffers, and per-bandwidth
/// score totals carry across blocks in the reduction's own per-lane
/// accumulators, so the full 2-D (n-block × k-block) tiling still matches
/// the resident profile bitwise.
struct StreamingConfig {
  /// Explicit bandwidth-block size. Nonzero forces the streamed path with
  /// exactly this block (clamped to the grid size); 0 derives the block
  /// from the memory budget.
  std::size_t k_block = 0;
  /// Explicit observation-block size. Nonzero forces the n-streamed (2-D
  /// tiled) path with exactly this block (clamped to the observation
  /// count); 0 derives it from the memory budget — staying n-resident
  /// whenever the O(n) carry state fits.
  std::size_t n_block = 0;
  /// Device-memory budget in bytes the plan must fit. 0 = derive: the
  /// KREG_MEMORY_BUDGET environment variable when set (auto_tune only),
  /// otherwise the device's own capacity
  /// (DeviceProperties::memory_budget()). Budgets above the device capacity
  /// are clamped to it — memory that does not exist cannot be planned for.
  std::size_t memory_budget_bytes = 0;
  /// When true (the default) a backend stays resident while the resident
  /// plan fits the budget and switches to streamed k-blocks only when it
  /// would not — so small problems run exactly as before and large ones no
  /// longer die with DeviceAllocError. When false and neither knob above is
  /// set, the backend always runs resident (the pre-streaming behaviour,
  /// allocation failures included) and KREG_MEMORY_BUDGET is ignored — an
  /// in-code opt-out beats the ambient environment.
  bool auto_tune = true;
};

/// A resolved streaming decision for one (n, k) problem on one device.
struct StreamingPlan {
  /// Bandwidths resident per pass; == k when not streamed.
  std::size_t k_block = 0;
  /// Observations resident per pass; == n when the plan is n-resident.
  std::size_t n_block = 0;
  /// True when the backend should take the k-block streaming path.
  bool streamed = false;
  /// True when the backend should take the 2-D (n-block × k-block) tiled
  /// path: observations stream through a halo slab and score totals carry
  /// across blocks in per-lane accumulators. Implies `streamed`.
  bool n_streamed = false;
  /// The budget the plan was sized against (0 = none consulted).
  std::size_t budget_bytes = 0;

  std::size_t blocks(std::size_t k) const noexcept {
    return k_block == 0 ? 0 : (k + k_block - 1) / k_block;
  }
  std::size_t n_blocks(std::size_t n) const noexcept {
    return n_block == 0 ? 0 : (n + n_block - 1) / n_block;
  }
};

/// Thrown by resolve_streaming_2d when the budget cannot fit even the
/// minimal (n_block = 1, k_block = 1) tile — a degenerate budget must fail
/// diagnosably instead of producing a zero-sized plan or letting the ledger
/// throw an unexplained DeviceAllocError later.
class StreamingBudgetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a human-readable byte size: a decimal count with an optional
/// binary suffix ("1MiB", "256KiB", "2GiB", "4096", "512K", "64MB"; K/M/G
/// with or without the trailing "B"/"iB" all mean the binary multiple).
/// Throws std::invalid_argument on anything else — including empty or
/// whitespace-only input, zero budgets ("0" would silently mean "derive
/// from the environment" downstream), and values that overflow size_t
/// (either in the digits or after applying the suffix multiplier).
std::size_t parse_memory_budget(std::string_view text);

/// KREG_MEMORY_BUDGET from the environment via parse_memory_budget, or 0
/// when the variable is unset or empty.
std::size_t env_memory_budget();

/// Resolves a StreamingConfig against one problem's byte model:
/// `resident_bytes` is the footprint of the resident (full n×k) plan,
/// `base_bytes` the streamed plan's k-independent allocations (data, carry
/// state), `per_k_bytes` the marginal cost of keeping one more bandwidth
/// resident, and `device_capacity_bytes` the budget of last resort
/// (DeviceProperties::memory_budget().global_bytes). The returned block is
/// always in [1, k]; a budget too small even for base_bytes degrades to the
/// k_block = 1 plan and lets the device ledger have the final word.
/// (The 1-D resolver; ignores StreamingConfig::n_block.)
StreamingPlan resolve_streaming(const StreamingConfig& config, std::size_t k,
                                std::size_t resident_bytes,
                                std::size_t base_bytes,
                                std::size_t per_k_bytes,
                                std::size_t device_capacity_bytes);

/// Byte model of one candidate 2-D tile: the modeled device footprint of a
/// plan holding `n_block` observations and `k_block` bandwidths resident
/// (slab + halo, carry state, residual block, and — when n_block < n — the
/// carried per-lane score accumulators).
using TileBytesFn =
    std::function<std::size_t(std::size_t n_block, std::size_t k_block)>;

/// Resolves a StreamingConfig into a 2-D (n-block × k-block) plan.
///
/// Explicit blocks win: a nonzero `config.k_block`/`config.n_block` is
/// clamped to [1, k]/[1, n] and used verbatim (an explicit n_block forces
/// the n-streamed path even when one block covers all observations — that
/// is how tests pin the n_block ∈ {n, n+13} degenerate cases to the same
/// code as n_block = 1). Otherwise the budget decides: resident while
/// `resident_bytes` fits; n-resident k-blocks while `tile_bytes(n, 1)`
/// fits (sized exactly as resolve_streaming would); else n_block shrinks
/// by halving until `tile_bytes(n_block, 1)` fits, and k_block grows back
/// to the largest fitting value. A budget below `tile_bytes(1, 1)` throws
/// StreamingBudgetError naming both numbers. The auto-resolved plan's
/// modeled bytes never exceed the budget, and its blocks tile
/// [0, n) × [0, k) exactly once.
StreamingPlan resolve_streaming_2d(const StreamingConfig& config,
                                   std::size_t n, std::size_t k,
                                   std::size_t resident_bytes,
                                   const TileBytesFn& tile_bytes,
                                   std::size_t device_capacity_bytes);

}  // namespace kreg
