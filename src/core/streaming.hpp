#pragma once

#include <cstddef>
#include <string_view>

namespace kreg {

/// How a window-sweep backend tiles the bandwidth grid through memory.
///
/// The window sweep keeps one n×k partial matrix (LSCV partials on the KDE
/// path, squared residuals on the regression path) resident while it runs.
/// That matrix — not time — is what caps the feasible sample size on the
/// device, the same wall the paper's Tesla S10 hit at n = 20,000. Streaming
/// mode tiles the grid into k-blocks: one n×k_block buffer stays resident,
/// blocks of bandwidths stream through it, each block is reduced to its
/// per-bandwidth sums immediately, and only the k score totals plus a
/// running argmin survive on the host. Per-observation window state (the
/// two pointers and the moment sums) is carried across blocks in O(n)
/// buffers, so the streamed sweep performs the *same* arithmetic in the
/// same order as the resident sweep — profiles agree bitwise.
struct StreamingConfig {
  /// Explicit bandwidth-block size. Nonzero forces the streamed path with
  /// exactly this block (clamped to the grid size); 0 derives the block
  /// from the memory budget.
  std::size_t k_block = 0;
  /// Device-memory budget in bytes the plan must fit. 0 = derive: the
  /// KREG_MEMORY_BUDGET environment variable when set (auto_tune only),
  /// otherwise the device's own capacity
  /// (DeviceProperties::memory_budget()). Budgets above the device capacity
  /// are clamped to it — memory that does not exist cannot be planned for.
  std::size_t memory_budget_bytes = 0;
  /// When true (the default) a backend stays resident while the resident
  /// plan fits the budget and switches to streamed k-blocks only when it
  /// would not — so small problems run exactly as before and large ones no
  /// longer die with DeviceAllocError. When false and neither knob above is
  /// set, the backend always runs resident (the pre-streaming behaviour,
  /// allocation failures included) and KREG_MEMORY_BUDGET is ignored — an
  /// in-code opt-out beats the ambient environment.
  bool auto_tune = true;
};

/// A resolved streaming decision for one (n, k) problem on one device.
struct StreamingPlan {
  /// Bandwidths resident per pass; == k when not streamed.
  std::size_t k_block = 0;
  /// True when the backend should take the k-block streaming path.
  bool streamed = false;
  /// The budget the plan was sized against (0 = none consulted).
  std::size_t budget_bytes = 0;

  std::size_t blocks(std::size_t k) const noexcept {
    return k_block == 0 ? 0 : (k + k_block - 1) / k_block;
  }
};

/// Parses a human-readable byte size: a decimal count with an optional
/// binary suffix ("1MiB", "256KiB", "2GiB", "4096", "512K", "64MB"; K/M/G
/// with or without the trailing "B"/"iB" all mean the binary multiple).
/// Throws std::invalid_argument on anything else.
std::size_t parse_memory_budget(std::string_view text);

/// KREG_MEMORY_BUDGET from the environment via parse_memory_budget, or 0
/// when the variable is unset or empty.
std::size_t env_memory_budget();

/// Resolves a StreamingConfig against one problem's byte model:
/// `resident_bytes` is the footprint of the resident (full n×k) plan,
/// `base_bytes` the streamed plan's k-independent allocations (data, carry
/// state), `per_k_bytes` the marginal cost of keeping one more bandwidth
/// resident, and `device_capacity_bytes` the budget of last resort
/// (DeviceProperties::memory_budget().global_bytes). The returned block is
/// always in [1, k]; a budget too small even for base_bytes degrades to the
/// k_block = 1 plan and lets the device ledger have the final word.
StreamingPlan resolve_streaming(const StreamingConfig& config, std::size_t k,
                                std::size_t resident_bytes,
                                std::size_t base_bytes,
                                std::size_t per_k_bytes,
                                std::size_t device_capacity_bytes);

}  // namespace kreg
