#include "core/kde.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>
#include <utility>

#include "stats/descriptive.hpp"
#include "stats/normal.hpp"

namespace kreg {

KernelDensity::KernelDensity(std::vector<double> xs, double bandwidth,
                             KernelType kernel)
    : xs_(std::move(xs)), bandwidth_(bandwidth), kernel_(kernel) {
  if (xs_.empty()) {
    throw std::invalid_argument("KernelDensity: empty sample");
  }
  if (!(bandwidth_ > 0.0)) {
    throw std::invalid_argument("KernelDensity: bandwidth must be > 0");
  }
}

double KernelDensity::operator()(double x) const {
  double acc = 0.0;
  for (double xl : xs_) {
    acc += kernel_value(kernel_, (x - xl) / bandwidth_);
  }
  return acc / (static_cast<double>(xs_.size()) * bandwidth_);
}

KernelDensity::Curve KernelDensity::curve(std::size_t points) const {
  if (points < 2) {
    throw std::invalid_argument("KernelDensity::curve: need >= 2 points");
  }
  Curve c;
  const double lo = stats::min(xs_) - bandwidth_;
  const double hi = stats::max(xs_) + bandwidth_;
  const double step = (hi - lo) / static_cast<double>(points - 1);
  c.x.reserve(points);
  c.density.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    c.x.push_back(x);
    c.density.push_back((*this)(x));
  }
  return c;
}

bool has_self_convolution(KernelType kernel) noexcept {
  switch (kernel) {
    case KernelType::kEpanechnikov:
    case KernelType::kUniform:
    case KernelType::kGaussian:
      return true;
    default:
      return false;
  }
}

double kernel_self_convolution(KernelType kernel, double u) {
  const double a = std::abs(u);
  switch (kernel) {
    case KernelType::kEpanechnikov:
      // (K*K)(u) = 3/160 (2−|u|)³ (u² + 6|u| + 4) on |u| ≤ 2;
      // (K*K)(0) = 3/5 = R(K) as required.
      if (a >= 2.0) return 0.0;
      {
        const double w = 2.0 - a;
        return (3.0 / 160.0) * w * w * w * (a * a + 6.0 * a + 4.0);
      }
    case KernelType::kUniform:
      // Convolution of two boxes: the triangle (2 − |u|)/4 on |u| ≤ 2.
      return a >= 2.0 ? 0.0 : (2.0 - a) / 4.0;
    case KernelType::kGaussian:
      // N(0,1)*N(0,1) = N(0,2).
      return std::exp(-0.25 * u * u) /
             (2.0 * std::sqrt(std::numbers::pi));
    default:
      throw std::invalid_argument(
          "kernel_self_convolution: no closed form implemented for '" +
          std::string(to_string(kernel)) + "'");
  }
}

double kde_lscv_score(std::span<const double> xs, double h,
                      KernelType kernel) {
  if (xs.size() < 2) {
    throw std::invalid_argument("kde_lscv_score: need at least 2 points");
  }
  if (!(h > 0.0)) {
    throw std::invalid_argument("kde_lscv_score: bandwidth must be > 0");
  }
  const double n = static_cast<double>(xs.size());

  // Pairwise sums over i < l, doubled (both kernels are symmetric).
  double conv_sum = 0.0;  // Σ_{i≠l} K̄((X_i−X_l)/h)
  double loo_sum = 0.0;   // Σ_{i≠l} K((X_i−X_l)/h)
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t l = i + 1; l < xs.size(); ++l) {
      const double u = (xs[i] - xs[l]) / h;
      conv_sum += 2.0 * kernel_self_convolution(kernel, u);
      loo_sum += 2.0 * kernel_value(kernel, u);
    }
  }

  const double integral_term =
      roughness(kernel) / (n * h) + conv_sum / (n * n * h);
  const double loo_term = 2.0 * loo_sum / (n * (n - 1.0) * h);
  return integral_term - loo_term;
}

SelectionResult kde_select_grid(std::span<const double> xs,
                                const BandwidthGrid& grid,
                                KernelType kernel) {
  std::vector<double> scores;
  scores.reserve(grid.size());
  for (double h : grid.values()) {
    scores.push_back(kde_lscv_score(xs, h, kernel));
  }
  std::size_t best = 0;
  for (std::size_t b = 1; b < scores.size(); ++b) {
    if (scores[b] < scores[best]) {
      best = b;
    }
  }
  SelectionResult result;
  result.bandwidth = grid[best];
  result.cv_score = scores[best];
  result.grid = grid.values();
  result.scores = std::move(scores);
  result.evaluations = result.grid.size();
  result.method = "kde-lscv-grid(" + std::string(to_string(kernel)) + ")";
  return result;
}

DensityBand kde_confidence_band(std::span<const double> xs, double h,
                                KernelType kernel, std::size_t points,
                                double level) {
  if (xs.empty()) {
    throw std::invalid_argument("kde_confidence_band: empty sample");
  }
  if (!(h > 0.0)) {
    throw std::invalid_argument("kde_confidence_band: bandwidth must be > 0");
  }
  if (points < 2) {
    throw std::invalid_argument("kde_confidence_band: need >= 2 points");
  }
  if (!(level > 0.0 && level < 1.0)) {
    throw std::invalid_argument("kde_confidence_band: level must be in (0,1)");
  }

  const KernelDensity density(std::vector<double>(xs.begin(), xs.end()), h,
                              kernel);
  const double z = stats::normal_quantile(0.5 + level / 2.0);
  const double r = roughness(kernel);
  const double n = static_cast<double>(xs.size());

  DensityBand band;
  band.bandwidth = h;
  band.level = level;
  const double lo = stats::min(xs) - h;
  const double hi = stats::max(xs) + h;
  const double step = (hi - lo) / static_cast<double>(points - 1);
  band.x.reserve(points);
  band.density.reserve(points);
  band.lower.reserve(points);
  band.upper.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    const double x = lo + step * static_cast<double>(p);
    const double f = density(x);
    const double se = std::sqrt(f * r / (n * h));
    band.x.push_back(x);
    band.density.push_back(f);
    band.lower.push_back(std::max(0.0, f - z * se));
    band.upper.push_back(f + z * se);
  }
  return band;
}

}  // namespace kreg
