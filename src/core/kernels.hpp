#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace kreg {

/// Kernel weighting functions for nonparametric estimation.
///
/// The paper implements Epanechnikov only and notes (§II, footnote 1) that
/// adding others is straightforward; this library provides the standard
/// second-order family. Footnote 1's observation is encoded in the traits:
/// the sorting-based grid sweep applies to every compactly supported kernel
/// expressible as a polynomial in |u| on [0, 1] (Epanechnikov, Uniform,
/// Triangular, Biweight, Triweight), while the Gaussian has unbounded
/// support — no indicator excludes observations, so no sort is needed and
/// only the naive path applies. The Cosine kernel is compact but not
/// polynomial, so it also uses the naive path.
enum class KernelType {
  kEpanechnikov,
  kUniform,
  kTriangular,
  kBiweight,
  kTriweight,
  kCosine,
  kGaussian,
};

/// All kernels, for parameterized tests and sweeps.
inline constexpr std::array<KernelType, 7> kAllKernels = {
    KernelType::kEpanechnikov, KernelType::kUniform,
    KernelType::kTriangular,   KernelType::kBiweight,
    KernelType::kTriweight,    KernelType::kCosine,
    KernelType::kGaussian,
};

std::string_view to_string(KernelType kernel) noexcept;

/// K(u): the kernel weight at standardized distance u = (x - X_l)/h.
/// Compact kernels use the closed-support convention 1{|u| <= 1}, matching
/// the paper's "(X_i - X_l) <= h" inclusion rule.
double kernel_value(KernelType kernel, double u) noexcept;

/// True when K has support [-1, 1] (an indicator excludes observations, so
/// the sorting strategy of §III can skip the excluded tail).
bool is_compact(KernelType kernel) noexcept;

/// Roughness R(K) = ∫ K(u)² du, used by rule-of-thumb bandwidths.
double roughness(KernelType kernel) noexcept;

/// Second moment κ₂(K) = ∫ u² K(u) du.
double second_moment(KernelType kernel) noexcept;

/// Polynomial-in-|u| representation of a compact kernel:
/// K(u) = Σ_m coeff[m] · |u|^m on |u| ≤ 1, coeff[m] = 0 for m > max_power.
///
/// This generalizes the paper's Epanechnikov-specific sums: the sorted
/// sweep accumulates the moments S_m = Σ |d|^m and T_m = Σ Y·|d|^m once per
/// observation, and every bandwidth's numerator/denominator follow by
/// rescaling with h^(-m) (the paper's "divided by h²" step is the m = 2
/// case). Epanechnikov: 0.75 − 0.75u²; Triangular: 1 − |u|; Biweight and
/// Triweight extend to powers 4 and 6.
struct SweepPolynomial {
  static constexpr std::size_t kMaxPower = 6;
  std::array<double, kMaxPower + 1> coeff{};  ///< coeff[m] multiplies |u|^m
  std::size_t max_power = 0;                  ///< highest nonzero power
};

/// True when the sorting-based sweep supports this kernel (compact and
/// polynomial in |u|).
bool is_sweepable(KernelType kernel) noexcept;

/// The sweep representation. Requires is_sweepable(kernel).
SweepPolynomial sweep_polynomial(KernelType kernel);

}  // namespace kreg
