#include "core/nadaraya_watson.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace kreg {

namespace {

void check_inputs(const data::Dataset& data, double bandwidth) {
  data.validate();
  if (data.empty()) {
    throw std::invalid_argument("kernel regression: empty dataset");
  }
  if (!(bandwidth > 0.0)) {
    throw std::invalid_argument("kernel regression: bandwidth must be > 0");
  }
}

}  // namespace

NadarayaWatson::NadarayaWatson(data::Dataset data, double bandwidth,
                               KernelType kernel)
    : data_(std::move(data)), bandwidth_(bandwidth), kernel_(kernel) {
  check_inputs(data_, bandwidth_);
}

double NadarayaWatson::operator()(double x) const {
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t l = 0; l < data_.size(); ++l) {
    const double w = kernel_value(kernel_, (x - data_.x[l]) / bandwidth_);
    numerator += data_.y[l] * w;
    denominator += w;
  }
  if (denominator == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return numerator / denominator;
}

std::vector<double> NadarayaWatson::evaluate(std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    out.push_back((*this)(x));
  }
  return out;
}

NadarayaWatson::Curve NadarayaWatson::curve(std::size_t points) const {
  if (points < 2) {
    throw std::invalid_argument("NadarayaWatson::curve: need >= 2 points");
  }
  Curve c;
  const double lo = stats::min(data_.x);
  const double hi = stats::max(data_.x);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  c.x.reserve(points);
  c.y.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    c.x.push_back(x);
    c.y.push_back((*this)(x));
  }
  return c;
}

bool NadarayaWatson::defined_at(double x) const {
  for (std::size_t l = 0; l < data_.size(); ++l) {
    if (kernel_value(kernel_, (x - data_.x[l]) / bandwidth_) != 0.0) {
      return true;
    }
  }
  return false;
}

LocalLinear::LocalLinear(data::Dataset data, double bandwidth,
                         KernelType kernel)
    : data_(std::move(data)), bandwidth_(bandwidth), kernel_(kernel) {
  check_inputs(data_, bandwidth_);
}

double LocalLinear::operator()(double x) const {
  // Weighted least squares of Y on (1, X - x); the intercept estimates g(x).
  // Closed form via the weighted moments
  //   s0 = Σw, s1 = Σw·d, s2 = Σw·d², t0 = Σw·Y, t1 = Σw·Y·d,  d = X_l − x.
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double t0 = 0.0;
  double t1 = 0.0;
  for (std::size_t l = 0; l < data_.size(); ++l) {
    const double d = data_.x[l] - x;
    const double w = kernel_value(kernel_, d / bandwidth_);
    if (w == 0.0) {
      continue;
    }
    s0 += w;
    s1 += w * d;
    s2 += w * d * d;
    t0 += w * data_.y[l];
    t1 += w * data_.y[l] * d;
  }
  if (s0 == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double det = s0 * s2 - s1 * s1;
  // Degenerate design (all weighted mass at one X): local-constant fallback.
  const double scale = s0 * (s2 / s0);  // ~ magnitude of det's terms
  if (std::abs(det) <= 1e-12 * std::max(scale, 1e-300)) {
    return t0 / s0;
  }
  return (s2 * t0 - s1 * t1) / det;
}

std::vector<double> LocalLinear::evaluate(std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    out.push_back((*this)(x));
  }
  return out;
}

bool LocalLinear::defined_at(double x) const {
  for (std::size_t l = 0; l < data_.size(); ++l) {
    if (kernel_value(kernel_, (x - data_.x[l]) / bandwidth_) != 0.0) {
      return true;
    }
  }
  return false;
}

}  // namespace kreg
