#pragma once

#include "core/kde_sweep.hpp"
#include "core/types.hpp"
#include "spmd/device.hpp"
#include "spmd/reduce.hpp"

namespace kreg {

/// Configuration for the device KDE selector (subset of the regression
/// selector's knobs; the paper's defaults again).
struct SpmdKdeConfig {
  KernelType kernel = KernelType::kEpanechnikov;
  std::size_t threads_per_block = 512;
  spmd::ReduceVariant reduce_variant = spmd::ReduceVariant::kSequential;
};

/// KDE LSCV bandwidth selection on the simulated SPMD device — the paper's
/// §II extension ("optimal bandwidth selection for kernel density
/// estimation") executed with the paper's own GPU recipe:
///
///   1. X and two n×k contribution matrices in global memory; the
///      bandwidth grid in constant memory (same 8 KB / 2,048-value cap).
///   2. Main kernel, one thread per observation: sort the thread's |Δ| row
///      (iterative quicksort), then sweep the ascending grid with two
///      admission pointers (supports h and 2h), writing per-(i, h) leave-
///      one-out and convolution sums, bandwidth-major.
///   3. 2k single-block Harris reductions produce Σ_i of both matrices;
///      the LSCV scores assemble on the host and one argmin reduction
///      picks the bandwidth.
///
/// Only double precision is offered (LSCV subtracts two near-equal O(1)
/// terms, where float's 7 digits are marginal). Requires
/// is_kde_sweepable(kernel).
class SpmdKdeSelector {
 public:
  explicit SpmdKdeSelector(spmd::Device& device, SpmdKdeConfig config = {});

  SelectionResult select(std::span<const double> xs,
                         const BandwidthGrid& grid) const;
  std::string name() const;

 private:
  spmd::Device& device_;
  SpmdKdeConfig config_;
};

}  // namespace kreg
