#pragma once

#include "core/kde_sweep.hpp"
#include "core/sorted_sweep.hpp"
#include "core/streaming.hpp"
#include "core/types.hpp"
#include "spmd/device.hpp"
#include "spmd/reduce.hpp"

namespace kreg {

/// Configuration for the device KDE selector (subset of the regression
/// selector's knobs; the paper's defaults again).
struct SpmdKdeConfig {
  KernelType kernel = KernelType::kEpanechnikov;
  std::size_t threads_per_block = 512;
  spmd::ReduceVariant reduce_variant = spmd::ReduceVariant::kSequential;
  /// Per-thread sweep, mirroring SpmdSelectorConfig::algorithm. kWindow
  /// (the default): X is sorted once on the host; device threads grow two
  /// admission windows (supports h and 2h) over the sorted array — no n×n
  /// row matrix, no per-thread sort, and a single n×k LSCV-partial matrix
  /// instead of the two contribution matrices, lifting the per-row path's
  /// device-memory sample limit. kPerRowSort keeps the paper-style
  /// per-thread quicksort as the ablation baseline.
  SweepAlgorithm algorithm = SweepAlgorithm::kWindow;
  /// 2-D (n-block × k-block) streaming of the window sweep (see
  /// core/streaming.hpp): k-blocks keep only one n×k_block LSCV-partial
  /// block resident (window state carried in O(n) buffers); n-blocks tile
  /// the observations too, uploading only a halo-padded slab of the sorted
  /// X per block — the halo covers both admission windows at h_max — and
  /// carrying partial totals in per-lane accumulators, so nothing O(n)
  /// stays resident. Every tiling matches the resident profile bitwise.
  /// Defaults engage each streaming dimension only when the previous plan
  /// would not fit the device (or an explicit/KREG_MEMORY_BUDGET budget).
  StreamingConfig stream;
};

/// KDE LSCV bandwidth selection on the simulated SPMD device — the paper's
/// §II extension ("optimal bandwidth selection for kernel density
/// estimation") executed with the paper's own GPU recipe:
///
///   1. X and the contribution matrices in global memory; the bandwidth
///      grid in constant memory (same 8 KB / 2,048-value cap). Per-row
///      mode stages an n×n |Δ| row matrix and two n×k contribution
///      matrices; window mode uploads the host-sorted X and keeps only one
///      n×k matrix of per-(i, h) LSCV partials.
///   2. Main kernel, one thread per observation. Per-row: sort the
///      thread's |Δ| row (iterative quicksort), then sweep the ascending
///      grid with two admission pointers (supports h and 2h), writing
///      per-(i, h) leave-one-out and convolution sums, bandwidth-major.
///      Window: grow the two admission windows over the globally sorted X
///      (kde_window_sweep_thread) and write the combined LSCV partial.
///   3. Single-block Harris reductions (2k per-row, k window) produce the
///      per-bandwidth totals; the LSCV scores assemble on the host and one
///      argmin reduction picks the bandwidth.
///
/// Only double precision is offered (LSCV subtracts two near-equal O(1)
/// terms, where float's 7 digits are marginal). Requires
/// is_kde_sweepable(kernel).
class SpmdKdeSelector {
 public:
  explicit SpmdKdeSelector(spmd::Device& device, SpmdKdeConfig config = {});

  SelectionResult select(std::span<const double> xs,
                         const BandwidthGrid& grid) const;
  std::string name() const;

  /// Predicted device-memory footprint of an (n, k) problem in bytes —
  /// what select() will ask the ledger for (doubles throughout). The
  /// per-row path carries the n×n row matrix that caps n; the window path
  /// is O(n + n·k).
  static std::size_t estimated_bytes(
      std::size_t n, std::size_t k,
      SweepAlgorithm algorithm = SweepAlgorithm::kWindow);

  /// Predicted device-memory footprint of the *streamed* window plan with
  /// the given k-block: sorted X, the carried window state of both
  /// admission sweeps, and one n×k_block LSCV-partial block. `k_block = 0`
  /// gives the k-independent base cost alone.
  static std::size_t estimated_streamed_bytes(std::size_t n,
                                              std::size_t k_block);

 private:
  spmd::Device& device_;
  SpmdKdeConfig config_;
};

}  // namespace kreg
