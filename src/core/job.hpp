#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/batched_sweep.hpp"
#include "core/selectors.hpp"
#include "core/streaming.hpp"
#include "core/window_sweep.hpp"
#include "data/dataset.hpp"
#include "parallel/thread_pool.hpp"
#include "spmd/device.hpp"

namespace kreg {

/// Which execution substrate a SelectionJob runs on. Every backend here is
/// *schedule-invariant*: its profile does not depend on the executing
/// thread pool's size or on what else runs concurrently, which is the
/// property the serving layer's bitwise cache/replay contract rests on.
/// (The slice-parallel host profiles are deliberately absent — their slice
/// boundaries follow the pool size, so two pools could disagree in the
/// last bits.)
enum class JobBackend {
  /// Sequential host window sweep (window_cv_profile and friends).
  kHostSweep,
  /// Cache-blocked host sweep (window_cv_profile_tiled): tiles combine in
  /// tile order with fixed auto tile sizes, so the profile is identical
  /// for every pool size — including 1.
  kHostTiled,
  /// The SPMD device sweep, with streaming/batching knobs honored.
  kDevice,
};
std::string_view to_string(JobBackend backend) noexcept;

/// Parses "host" / "tiled" / "device" (the serve protocol's backend=
/// values). Throws std::invalid_argument on anything else.
JobBackend parse_job_backend(std::string_view text);

/// A submittable bandwidth-selection plan: everything a scheduler needs to
/// run one grid selection, with no live resources attached — the dataset
/// rides behind a shared handle, and the executing device/pool arrive at
/// run time (JobContext). This is the refactored entry point of the
/// selector family: `run_job` routes one SelectionJob through the same
/// window-sweep machinery the Selector classes call, so a job executed
/// directly and a job executed by the serve scheduler produce bitwise
/// identical profiles.
struct SelectionJob {
  std::shared_ptr<const data::Dataset> data;
  EstimatorKind estimator = EstimatorKind::kNadarayaWatson;
  KernelType kernel = KernelType::kEpanechnikov;
  Precision precision = Precision::kDouble;
  /// Candidate bandwidths (NW) or one-sided bandwidths (OSCV), strictly
  /// ascending and positive. Ignored for kKnn.
  std::vector<double> bandwidth_grid;
  /// Candidate neighbour counts (kKnn), strictly increasing in [1, n-1].
  /// Ignored for the bandwidth estimators.
  std::vector<std::size_t> neighbor_grid;
  JobBackend backend = JobBackend::kDevice;
  /// Streaming/batching knobs for the device backend. The scheduler may
  /// tighten memory_budget_bytes to the job's admission share; every plan
  /// the budget induces is bitwise identical, so the tightening is
  /// invisible in the profile.
  StreamingConfig stream;
  /// Host tiling for kHostTiled (0 = auto; auto sizes are fixed
  /// constants, not pool-derived, so the default stays deterministic).
  HostTiling tiling;
  /// Device lane batching (NW only): 0 = auto, 1 scalar, 4/8/16 batched.
  std::size_t lane_width = 0;
  SigmaPolicy sigma = SigmaPolicy::kPositionLength;

  /// Grid length for this job's estimator.
  std::size_t grid_size() const noexcept {
    return estimator == EstimatorKind::kKnn ? neighbor_grid.size()
                                            : bandwidth_grid.size();
  }
};

/// The unified outcome of running a SelectionJob: the whole CV profile
/// plus the deterministic argmin. For kKnn the grid holds the neighbour
/// counts converted exactly to double; `selected` is the chosen h (NW),
/// the rescaled two-sided ĥ = C·b̂ (OSCV), or the chosen count (kKnn).
struct SelectionProfile {
  EstimatorKind estimator = EstimatorKind::kNadarayaWatson;
  std::vector<double> grid;
  std::vector<double> scores;
  std::size_t argmin = 0;
  double selected = 0.0;
  double cv_score = 0.0;
  std::string method;
};

/// Structural validation of a job: dataset handle present, dataset valid,
/// the estimator's grid present/valid (strictly ascending; neighbour
/// counts within [1, n-1]), the other estimator's grid absent, and the
/// kernel sweepable for the bandwidth estimators. Throws
/// std::invalid_argument naming the offending field.
void validate_job(const SelectionJob& job);

/// Live resources a job executes against.
struct JobContext {
  /// Required for JobBackend::kDevice; ignored otherwise.
  spmd::Device* device = nullptr;
  /// Worker pool for the tiled host backend (nullptr = global). Affects
  /// only scheduling, never the profile bits.
  parallel::ThreadPool* pool = nullptr;
};

/// Executes one job to completion on the calling thread and returns its
/// profile. This is the reference path the serve scheduler is
/// differential-tested against: for any fixed job, run_job returns the
/// same bits on every call, on every pool, under every memory budget.
SelectionProfile run_job(const SelectionJob& job, const JobContext& ctx);

/// The method string run_job stamps on this job's profile
/// ("job:<estimator>:<backend>:<kernel>:<precision>"). Exposed so the serve
/// layer can restamp a cache-served profile for the *requesting* job — the
/// numeric payload is backend-invariant bitwise, but the method string
/// names the backend the requester asked for, not the one that populated
/// the cache.
std::string job_method(const SelectionJob& job);

/// Builds the profile struct from a computed score vector: argmin with
/// smallest-index tie-break, estimator-specific `selected` (NW:
/// grid[argmin]; OSCV: rescale_constant·grid[argmin]; kKnn: the count).
SelectionProfile profile_from_scores(const SelectionJob& job,
                                     std::vector<double> scores,
                                     std::string method);

/// Modeled device-memory footprint of the job's k-block streaming plan
/// holding `k_block` grid entries resident (k_block = 0: the k-independent
/// base that resolve_streaming sizes blocks against). Routes to the
/// estimator's own byte model (SpmdGridSelector::estimated_streamed_bytes,
/// knn_estimated_streamed_bytes, oscv_estimated_streamed_bytes); the serve
/// scheduler's admission control reserves these bytes before dispatch.
std::size_t job_streamed_bytes(const SelectionJob& job, std::size_t k_block);

}  // namespace kreg
