#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/streaming.hpp"
#include "core/window_sweep.hpp"
#include "data/dataset.hpp"
#include "parallel/thread_pool.hpp"
#include "spmd/device.hpp"

namespace kreg {

/// k-NN regression with exact fast LOOCV over a neighbour-count grid — the
/// first non-bandwidth workload on the shared window machinery.
///
/// A k-NN neighbourhood is a window in the sorted array: the k nearest
/// leave-one-out neighbours of an observation are contiguous around its
/// sorted position, and as k ascends across a strictly increasing k-grid
/// the window only grows. So Kanagawa's fast k-NN LOOCV is the window
/// sweep with the grid axis a neighbour count instead of a bandwidth:
/// O(n log n) for the one global sort plus O(n·(|grid| + admitted)) for
/// the sweeps, versus the naive O(n²·|grid|) of re-finding each
/// neighbourhood per (observation, k).
///
/// Neighbourhoods are tie-inclusive — N_k(i) = {j ≠ i : |x_j − x_i| ≤
/// r_k(i)} with r_k(i) the k-th smallest LOO distance — so the estimator
/// is well-defined under duplicated x-values and independent of any
/// admission order; the predictor is the unweighted mean of Y over N_k(i).
/// Every backend carries the left/right running sums separately and
/// accumulates each side strictly outward, so each (observation, k)
/// residual is bit-identical everywhere — including the naive reference,
/// which re-accumulates in the same outward order. The sequential, device,
/// streamed-k-block, and naive profiles therefore agree **bitwise** (their
/// per-k score folds also run in ascending observation order); the
/// parallel and tiled profiles regroup that fold at slice/tile boundaries
/// — deterministic, tolerance-equal, and bitwise when one slice/tile
/// covers n. See detail/device_sweep.hpp (knn_sweep_seed/resume).

/// Outcome of a k-NN LOOCV selection: the neighbour-count analogue of
/// SelectionResult (the selected axis is an integer count, so the generic
/// double-valued result struct does not fit).
struct KnnSelectionResult {
  std::size_t k = 0;        ///< selected neighbour count (argmin of CV)
  double cv_score = 0.0;    ///< mean squared LOO residual at the selected k
  std::vector<std::size_t> grid;  ///< candidate neighbour counts evaluated
  std::vector<double> scores;     ///< CV per candidate (aligned with grid)
  std::string method;             ///< backend name, for reports
};

/// A default neighbour grid: at most `max_size` log-spaced counts spanning
/// [1, n − 1] (duplicates collapsed), strictly increasing — the k-grid
/// analogue of BandwidthGrid::geometric. Requires n >= 2.
std::vector<std::size_t> default_neighbor_grid(std::size_t n,
                                               std::size_t max_size = 32);

/// Full LOOCV profile CV(k) = (1/n) Σ_i (Y_i − mean_{N_k(i)} Y)² for every
/// k in the (strictly increasing, validated) grid, sequentially over
/// observations via the fast window sweep.
std::vector<double> knn_cv_profile(const data::Dataset& data,
                                   std::span<const std::size_t> kgrid,
                                   Precision precision = Precision::kDouble);

/// Same profile with observations distributed across a thread pool (one
/// global sort on the calling thread; per-slice partials combined in slice
/// order, so the result is deterministic; bitwise equal to the sequential
/// profile when one slice covers n, within summation-regrouping error
/// otherwise).
std::vector<double> knn_cv_profile_parallel(
    const data::Dataset& data, std::span<const std::size_t> kgrid,
    Precision precision = Precision::kDouble,
    parallel::ThreadPool* pool = nullptr);

/// Cache-blocked host mirror of the device's k-block streaming: tiles of
/// observations carry their window state (two pointers, two side sums)
/// across ascending k-blocks taken innermost. Tile partials combine in
/// tile order — deterministic, same contract as the parallel profile.
std::vector<double> knn_cv_profile_tiled(const data::Dataset& data,
                                         std::span<const std::size_t> kgrid,
                                         Precision precision = Precision::kDouble,
                                         HostTiling tiling = {},
                                         parallel::ThreadPool* pool = nullptr);

/// Naive O(n²·|grid|) reference: per (observation, k) finds r_k by
/// selection over all n − 1 LOO distances, then re-accumulates the
/// tie-inclusive window outward from scratch. Ground truth for the golden
/// and fuzz suites — the fast profiles must match it bitwise.
std::vector<double> knn_cv_profile_naive(const data::Dataset& data,
                                         std::span<const std::size_t> kgrid,
                                         Precision precision = Precision::kDouble);

/// Device execution of the k-NN sweep.
struct KnnDeviceConfig {
  /// kDouble by default: the k-NN scores ride the same bitwise contract as
  /// the host paths, so there is no single-precision paper mode to honor.
  Precision precision = Precision::kDouble;
  std::size_t threads_per_block = 512;
  /// k-block streaming (1-D): nonzero k_block or a memory budget tiles the
  /// neighbour grid so only one n×k_block residual block is resident,
  /// window state carried in O(n) buffers across blocks — streamed
  /// profiles are bitwise identical to resident. n_block is ignored (the
  /// k-NN window is data-adaptive, so no h_max halo bound exists to slab
  /// the sorted arrays with).
  StreamingConfig stream;
};

/// The sweep on the SPMD device: one thread per observation fills the
/// residual block (bandwidth-major), then one thread per k folds its n
/// residuals **in ascending observation order** — the same order as the
/// sequential host fold, so the device profile is bitwise equal to
/// knn_cv_profile (tree reductions would only be tolerance-equal).
std::vector<double> knn_cv_profile_device(spmd::Device& device,
                                          const data::Dataset& data,
                                          std::span<const std::size_t> kgrid,
                                          KnnDeviceConfig config = {});

/// Modeled device footprint of the k-NN plan holding `k_block` grid
/// entries resident (k_block = 0: the k-independent base — sorted arrays
/// plus carry state — that resolve_streaming sizes blocks against).
std::size_t knn_estimated_streamed_bytes(std::size_t n, std::size_t k_block,
                                         Precision precision);

/// Argmin over the profile with smallest-index tie-break (deterministic).
KnnSelectionResult knn_selection_from_profile(std::span<const std::size_t> kgrid,
                                              std::vector<double> scores,
                                              std::string method);

/// One-call selection via the sequential fast sweep.
KnnSelectionResult knn_select(const data::Dataset& data,
                              std::span<const std::size_t> kgrid,
                              Precision precision = Precision::kDouble);

/// Fitted k-NN regression for evaluation at arbitrary query points (the
/// CLI's fitted-curve output): tie-inclusive k-nearest mean around each
/// query, windows found by binary search on the sorted X. Queries are
/// independent of the training LOOCV — the query point itself is not an
/// observation, so no self term is excluded.
class KnnRegression {
 public:
  KnnRegression(const data::Dataset& data, std::size_t k);

  double predict(double x0) const;
  std::size_t k() const noexcept { return k_; }

 private:
  SortedDataset<double> sorted_;
  std::size_t k_;
};

}  // namespace kreg
