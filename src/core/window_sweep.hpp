#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/kernels.hpp"
#include "core/sorted_sweep.hpp"
#include "core/streaming.hpp"
#include "data/dataset.hpp"
#include "parallel/thread_pool.hpp"

namespace kreg {

/// The window-sweep grid search: the fast-sum-updating refinement of the
/// paper's §III algorithm.
///
/// The paper sorts each observation's distance row independently, so the
/// whole grid search is O(n² log n). But once X is sorted **once globally**
/// (argsort, Y permuted alongside), every observation's neighbours within
/// any bandwidth h form a contiguous window around its sorted position, and
/// as h ascends across the grid the window only grows. Expanding a left and
/// a right pointer — each monotone — enumerates exactly the newly admitted
/// observations per bandwidth, maintaining the same moment sums
/// S_m = Σ|d|^m, T_m = ΣY·|d|^m that the `SweepPolynomial` recombination
/// turns into every bandwidth's LOO numerator/denominator.
///
/// Total work: O(n log n) for the one global sort plus O(n·(k + admitted))
/// for the sweeps, with O(n) extra memory — versus O(n² log n) time and an
/// O(n) private row per worker for the per-row-sort paths. The per-row path
/// remains available (`SortedGridSelector`) as the paper-faithful ablation
/// baseline.

/// (X, Y) sorted ascending by X — the shared input of every window-sweep
/// profile. Built once per selection with the argsort in `src/sort/`;
/// reusable across grids and kernels for the same dataset.
template <class Scalar>
struct SortedDataset {
  std::vector<Scalar> x;  ///< X ascending
  std::vector<Scalar> y;  ///< Y permuted alongside X
};

/// Sorts (X, Y) by X. O(n log n); the only super-linear step of the sweep.
template <class Scalar>
SortedDataset<Scalar> sort_dataset(std::span<const double> x,
                                   std::span<const double> y);

extern template SortedDataset<float> sort_dataset<float>(
    std::span<const double>, std::span<const double>);
extern template SortedDataset<double> sort_dataset<double>(
    std::span<const double>, std::span<const double>);

/// Full CV profile CV_lc(h) for every h in the (strictly ascending) grid via
/// the window sweep, sequentially over observations. Requires a sweepable
/// kernel. Matches `sweep_cv_profile` to floating-point recombination error.
std::vector<double> window_cv_profile(const data::Dataset& data,
                                      std::span<const double> grid,
                                      KernelType kernel,
                                      Precision precision = Precision::kDouble);

/// Same profile with observations distributed across a thread pool
/// (deterministic combination order; the global sort is done once, on the
/// calling thread, and shared read-only by all workers). nullptr = global
/// pool.
std::vector<double> window_cv_profile_parallel(
    const data::Dataset& data, std::span<const double> grid, KernelType kernel,
    Precision precision = Precision::kDouble,
    parallel::ThreadPool* pool = nullptr);

/// Cache-blocking parameters of `window_cv_profile_tiled`. 0 = auto:
/// n_block is sized so one tile's carried window state (two pointers plus
/// the moment sums per observation, ≲ 128 B each) stays within a ~256 KiB
/// L2 slice, and k_block bounds the per-tile score accumulator touched in
/// the innermost loop.
struct HostTiling {
  std::size_t n_block = 0;  ///< observations per tile (0 = auto, ~2048)
  std::size_t k_block = 0;  ///< bandwidths per inner block (0 = auto, 64)
};

/// The cache-blocked host kernel mirroring the device's k-block streaming:
/// observations are tiled into L2-sized n-blocks (the thread pool schedules
/// tiles), each tile carries its window state across k-blocks taken
/// innermost, and every (tile, k-block) cell accumulates into the tile's
/// private score slice. The k-blocks of one tile must run in ascending
/// order (the admission windows are monotone in h), so parallelism is
/// across tiles only. Tile partials combine in tile order — the result is
/// deterministic, and matches `window_cv_profile` up to summation
/// regrouping (exact when each tile's additions commute, else within
/// floating-point reassociation error).
std::vector<double> window_cv_profile_tiled(
    const data::Dataset& data, std::span<const double> grid, KernelType kernel,
    Precision precision = Precision::kDouble, HostTiling tiling = {},
    parallel::ThreadPool* pool = nullptr);

/// Maps the device StreamingConfig onto the host tiling so one
/// `--n-block`/`--k-block`/`--memory-budget` knob set drives both mirrors:
/// explicit blocks carry over verbatim; with n_block unset, a nonzero
/// budget (explicit, or KREG_MEMORY_BUDGET under auto_tune) sizes the tile
/// by the documented ≲128 B/observation carry model; everything else stays
/// 0 = auto.
HostTiling host_tiling_from_stream(const StreamingConfig& stream);

}  // namespace kreg
