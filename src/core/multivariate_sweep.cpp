#include "core/multivariate_sweep.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "parallel/parallel_for.hpp"
#include "sort/iterative_quicksort.hpp"

namespace kreg {

namespace {

/// Degree cap for the 1/c polynomial: dimensions × highest kernel power.
constexpr std::size_t kMaxDegree = 24;

struct RayContext {
  SweepPolynomial kernel_poly;
  std::size_t dim = 0;
  std::size_t degree = 0;  ///< dim * kernel_poly.max_power
  double c0_pow_dim = 0.0; ///< K(0)^dim — the self term's power-0 weight
};

RayContext make_context(const data::MDataset& data, KernelType kernel) {
  RayContext ctx;
  ctx.kernel_poly = sweep_polynomial(kernel);
  ctx.dim = data.dim;
  ctx.degree = ctx.dim * ctx.kernel_poly.max_power;
  if (ctx.degree > kMaxDegree) {
    throw std::invalid_argument(
        "multi_ray: dimension x kernel degree exceeds the supported cap");
  }
  ctx.c0_pow_dim = 1.0;
  for (std::size_t j = 0; j < ctx.dim; ++j) {
    ctx.c0_pow_dim *= ctx.kernel_poly.coeff[0];
  }
  return ctx;
}

void check_inputs(const data::MDataset& data, std::span<const double> ratios,
                  std::span<const double> scales, KernelType kernel) {
  data.validate();
  if (data.size() == 0) {
    throw std::invalid_argument("multi_ray: empty dataset");
  }
  if (!is_sweepable(kernel)) {
    throw std::invalid_argument("multi_ray: kernel '" +
                                std::string(to_string(kernel)) +
                                "' is not sweepable");
  }
  if (ratios.size() != data.dim) {
    throw std::invalid_argument("multi_ray: need one ratio per dimension");
  }
  for (double r : ratios) {
    if (!(r > 0.0)) {
      throw std::invalid_argument("multi_ray: ratios must be positive");
    }
  }
  if (scales.empty() || !(scales.front() > 0.0)) {
    throw std::invalid_argument("multi_ray: scales must be positive");
  }
  for (std::size_t b = 1; b < scales.size(); ++b) {
    if (scales[b] < scales[b - 1]) {
      throw std::invalid_argument("multi_ray: scales must be ascending");
    }
  }
}

/// Coefficient vector (powers of 1/c) of Π_j K(ρ_j / c) for one pair:
/// the convolution across dimensions of v_j[m] = c_m ρ_j^m.
void pair_coefficients(const RayContext& ctx, std::span<const double> xi,
                       std::span<const double> xl,
                       std::span<const double> ratios,
                       std::array<double, kMaxDegree + 1>& out) {
  const std::size_t kp = ctx.kernel_poly.max_power;
  std::array<double, kMaxDegree + 1> acc{};
  std::array<double, SweepPolynomial::kMaxPower + 1> dim_vec{};
  acc[0] = 1.0;
  std::size_t acc_degree = 0;

  for (std::size_t j = 0; j < ctx.dim; ++j) {
    const double rho = std::abs(xi[j] - xl[j]) / ratios[j];
    double pw = 1.0;
    for (std::size_t m = 0; m <= kp; ++m) {
      dim_vec[m] = ctx.kernel_poly.coeff[m] * pw;
      pw *= rho;
    }
    // acc = acc (*) dim_vec  (polynomial product in powers of 1/c).
    std::array<double, kMaxDegree + 1> next{};
    for (std::size_t a = 0; a <= acc_degree; ++a) {
      if (acc[a] == 0.0) {
        continue;
      }
      for (std::size_t m = 0; m <= kp; ++m) {
        next[a + m] += acc[a] * dim_vec[m];
      }
    }
    acc = next;
    acc_degree += kp;
  }
  out = acc;
}

/// One observation's contribution to the squared-residual totals across all
/// scales (paper §III structure: sort once, sweep once).
void sweep_observation_ray(const data::MDataset& data, const RayContext& ctx,
                           std::span<const double> ratios,
                           std::span<const double> scales, std::size_t i,
                           std::vector<double>& rho_scratch,
                           std::vector<std::size_t>& idx_scratch,
                           std::span<double> totals) {
  const std::size_t n = data.size();
  const std::size_t k = scales.size();
  rho_scratch.resize(n);
  idx_scratch.resize(n);
  const std::span<const double> xi = data.row(i);
  for (std::size_t l = 0; l < n; ++l) {
    const std::span<const double> xl = data.row(l);
    double rho = 0.0;
    for (std::size_t j = 0; j < ctx.dim; ++j) {
      rho = std::max(rho, std::abs(xi[j] - xl[j]) / ratios[j]);
    }
    rho_scratch[l] = rho;
    idx_scratch[l] = l;
  }
  sort::iterative_quicksort_kv(std::span<double>(rho_scratch),
                               std::span<std::size_t>(idx_scratch));

  std::array<double, kMaxDegree + 1> s_m{};  // Σ pair coefficients
  std::array<double, kMaxDegree + 1> t_m{};  // Σ Y_l · pair coefficients
  std::array<double, kMaxDegree + 1> w{};
  std::size_t p = 0;
  const double yi = data.y[i];

  for (std::size_t b = 0; b < k; ++b) {
    const double c = scales[b];
    while (p < n && rho_scratch[p] <= c) {
      const std::size_t l = idx_scratch[p];
      pair_coefficients(ctx, xi, data.row(l), ratios, w);
      const double yl = data.y[l];
      for (std::size_t m = 0; m <= ctx.degree; ++m) {
        s_m[m] += w[m];
        t_m[m] += yl * w[m];
      }
      ++p;
    }
    // Evaluate the 1/c polynomial; subtract the self term (K(0)^p at
    // power 0, weighting Y_i).
    double num = 0.0;
    double den = 0.0;
    const double inv_c = 1.0 / c;
    double inv_pow = 1.0;
    for (std::size_t m = 0; m <= ctx.degree; ++m) {
      num += t_m[m] * inv_pow;
      den += s_m[m] * inv_pow;
      inv_pow *= inv_c;
    }
    num -= ctx.c0_pow_dim * yi;
    den -= ctx.c0_pow_dim;
    if (den > 0.0) {
      const double e = yi - num / den;
      totals[b] += e * e;
    }
  }
}

}  // namespace

std::vector<double> default_ray_ratios(const data::MDataset& data) {
  data.validate();
  std::vector<double> ratios(data.dim);
  for (std::size_t j = 0; j < data.dim; ++j) {
    ratios[j] = data.domain(j);
    if (!(ratios[j] > 0.0)) {
      throw std::invalid_argument(
          "default_ray_ratios: degenerate domain in dimension " +
          std::to_string(j));
    }
  }
  return ratios;
}

std::vector<double> multi_ray_cv_profile(const data::MDataset& data,
                                         std::span<const double> ratios,
                                         std::span<const double> scales,
                                         KernelType kernel) {
  check_inputs(data, ratios, scales, kernel);
  const RayContext ctx = make_context(data, kernel);
  std::vector<double> totals(scales.size(), 0.0);
  std::vector<double> rho_scratch;
  std::vector<std::size_t> idx_scratch;
  for (std::size_t i = 0; i < data.size(); ++i) {
    sweep_observation_ray(data, ctx, ratios, scales, i, rho_scratch,
                          idx_scratch, totals);
  }
  for (double& t : totals) {
    t /= static_cast<double>(data.size());
  }
  return totals;
}

std::vector<double> multi_ray_cv_profile_parallel(
    const data::MDataset& data, std::span<const double> ratios,
    std::span<const double> scales, KernelType kernel,
    parallel::ThreadPool* pool) {
  check_inputs(data, ratios, scales, kernel);
  const RayContext ctx = make_context(data, kernel);
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }
  const std::vector<parallel::BlockedRange> slices =
      parallel::partition_evenly(data.size(), pool->size());
  std::vector<std::vector<double>> parts(
      slices.size(), std::vector<double>(scales.size(), 0.0));

  parallel::parallel_for(
      slices.size(),
      [&](std::size_t s) {
        std::vector<double> rho_scratch;
        std::vector<std::size_t> idx_scratch;
        for (std::size_t i = slices[s].begin; i < slices[s].end; ++i) {
          sweep_observation_ray(data, ctx, ratios, scales, i, rho_scratch,
                                idx_scratch, parts[s]);
        }
      },
      pool);

  std::vector<double> totals(scales.size(), 0.0);
  for (const auto& part : parts) {
    for (std::size_t b = 0; b < totals.size(); ++b) {
      totals[b] += part[b];
    }
  }
  for (double& t : totals) {
    t /= static_cast<double>(data.size());
  }
  return totals;
}

MultiSelectionResult multi_ray_select(const data::MDataset& data,
                                      std::span<const double> ratios,
                                      const BandwidthGrid& scales,
                                      KernelType kernel) {
  const std::vector<double> profile =
      multi_ray_cv_profile(data, ratios, scales.values(), kernel);
  std::size_t best = 0;
  for (std::size_t b = 1; b < profile.size(); ++b) {
    if (profile[b] < profile[best]) {
      best = b;
    }
  }
  MultiSelectionResult result;
  result.bandwidths.resize(data.dim);
  for (std::size_t j = 0; j < data.dim; ++j) {
    result.bandwidths[j] = scales[best] * ratios[j];
  }
  result.cv_score = profile[best];
  result.evaluations = scales.size();
  result.method = "multi-ray-sweep(" + std::string(to_string(kernel)) + ")";
  return result;
}

}  // namespace kreg
