#include "core/multivariate_sweep.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/validate_grid.hpp"
#include "parallel/parallel_for.hpp"
#include "sort/argsort.hpp"
#include "sort/iterative_quicksort.hpp"

namespace kreg {

namespace {

/// Degree cap for the 1/c polynomial: dimensions × highest kernel power.
constexpr std::size_t kMaxDegree = 24;

struct RayContext {
  SweepPolynomial kernel_poly;
  std::size_t dim = 0;
  std::size_t degree = 0;  ///< dim * kernel_poly.max_power
  double c0_pow_dim = 0.0; ///< K(0)^dim — the self term's power-0 weight
};

RayContext make_context(const data::MDataset& data, KernelType kernel) {
  RayContext ctx;
  ctx.kernel_poly = sweep_polynomial(kernel);
  ctx.dim = data.dim;
  ctx.degree = ctx.dim * ctx.kernel_poly.max_power;
  if (ctx.degree > kMaxDegree) {
    throw std::invalid_argument(
        "multi_ray: dimension x kernel degree exceeds the supported cap");
  }
  ctx.c0_pow_dim = 1.0;
  for (std::size_t j = 0; j < ctx.dim; ++j) {
    ctx.c0_pow_dim *= ctx.kernel_poly.coeff[0];
  }
  return ctx;
}

void check_inputs(const data::MDataset& data, std::span<const double> ratios,
                  std::span<const double> scales, KernelType kernel) {
  data.validate();
  if (data.size() == 0) {
    throw std::invalid_argument("multi_ray: empty dataset");
  }
  if (!is_sweepable(kernel)) {
    throw std::invalid_argument("multi_ray: kernel '" +
                                std::string(to_string(kernel)) +
                                "' is not sweepable");
  }
  if (ratios.size() != data.dim) {
    throw std::invalid_argument("multi_ray: need one ratio per dimension");
  }
  for (double r : ratios) {
    if (!(r > 0.0)) {
      throw std::invalid_argument("multi_ray: ratios must be positive");
    }
  }
  // Scale multipliers tolerate duplicates (non-strict): a repeated scale
  // admits nothing new but stays well-defined.
  validate_bandwidth_grid(scales, "multi_ray", /*strict=*/false);
}

/// Coefficient vector (powers of 1/c) of Π_j K(ρ_j / c) for one pair:
/// the convolution across dimensions of v_j[m] = c_m ρ_j^m.
void pair_coefficients(const RayContext& ctx, std::span<const double> xi,
                       std::span<const double> xl,
                       std::span<const double> ratios,
                       std::array<double, kMaxDegree + 1>& out) {
  const std::size_t kp = ctx.kernel_poly.max_power;
  std::array<double, kMaxDegree + 1> acc{};
  std::array<double, SweepPolynomial::kMaxPower + 1> dim_vec{};
  acc[0] = 1.0;
  std::size_t acc_degree = 0;

  for (std::size_t j = 0; j < ctx.dim; ++j) {
    const double rho = std::abs(xi[j] - xl[j]) / ratios[j];
    double pw = 1.0;
    for (std::size_t m = 0; m <= kp; ++m) {
      dim_vec[m] = ctx.kernel_poly.coeff[m] * pw;
      pw *= rho;
    }
    // acc = acc (*) dim_vec  (polynomial product in powers of 1/c).
    std::array<double, kMaxDegree + 1> next{};
    for (std::size_t a = 0; a <= acc_degree; ++a) {
      if (acc[a] == 0.0) {
        continue;
      }
      for (std::size_t m = 0; m <= kp; ++m) {
        next[a + m] += acc[a] * dim_vec[m];
      }
    }
    acc = next;
    acc_degree += kp;
  }
  out = acc;
}

/// One observation's contribution to the squared-residual totals across all
/// scales (paper §III structure: sort once, sweep once).
void sweep_observation_ray(const data::MDataset& data, const RayContext& ctx,
                           std::span<const double> ratios,
                           std::span<const double> scales, std::size_t i,
                           std::vector<double>& rho_scratch,
                           std::vector<std::size_t>& idx_scratch,
                           std::span<double> totals) {
  const std::size_t n = data.size();
  const std::size_t k = scales.size();
  rho_scratch.resize(n);
  idx_scratch.resize(n);
  const std::span<const double> xi = data.row(i);
  for (std::size_t l = 0; l < n; ++l) {
    const std::span<const double> xl = data.row(l);
    double rho = 0.0;
    for (std::size_t j = 0; j < ctx.dim; ++j) {
      rho = std::max(rho, std::abs(xi[j] - xl[j]) / ratios[j]);
    }
    rho_scratch[l] = rho;
    idx_scratch[l] = l;
  }
  sort::iterative_quicksort_kv(std::span<double>(rho_scratch),
                               std::span<std::size_t>(idx_scratch));

  std::array<double, kMaxDegree + 1> s_m{};  // Σ pair coefficients
  std::array<double, kMaxDegree + 1> t_m{};  // Σ Y_l · pair coefficients
  std::array<double, kMaxDegree + 1> w{};
  std::size_t p = 0;
  const double yi = data.y[i];

  for (std::size_t b = 0; b < k; ++b) {
    const double c = scales[b];
    while (p < n && rho_scratch[p] <= c) {
      const std::size_t l = idx_scratch[p];
      pair_coefficients(ctx, xi, data.row(l), ratios, w);
      const double yl = data.y[l];
      for (std::size_t m = 0; m <= ctx.degree; ++m) {
        s_m[m] += w[m];
        t_m[m] += yl * w[m];
      }
      ++p;
    }
    // Evaluate the 1/c polynomial; subtract the self term (K(0)^p at
    // power 0, weighting Y_i).
    double num = 0.0;
    double den = 0.0;
    const double inv_c = 1.0 / c;
    double inv_pow = 1.0;
    for (std::size_t m = 0; m <= ctx.degree; ++m) {
      num += t_m[m] * inv_pow;
      den += s_m[m] * inv_pow;
      inv_pow *= inv_c;
    }
    num -= ctx.c0_pow_dim * yi;
    den -= ctx.c0_pow_dim;
    if (den > 0.0) {
      const double e = yi - num / den;
      totals[b] += e * e;
    }
  }
}

/// The ray's observations re-ordered by the scaled first coordinate
/// z = x_0 / r_0 — the one global sort the window sweep needs per ray.
/// Rows and Y are permuted alongside so the sweep reads them contiguously.
struct RaySorted {
  std::vector<double> z;  ///< x_0 / r_0, ascending
  std::vector<double> x;  ///< row-major n × dim, permuted like z
  std::vector<double> y;  ///< permuted like z
};

RaySorted sort_ray_dataset(const data::MDataset& data,
                           std::span<const double> ratios) {
  const std::size_t n = data.size();
  const std::size_t dim = data.dim;
  std::vector<double> z(n);
  for (std::size_t l = 0; l < n; ++l) {
    z[l] = data.x[l * dim] / ratios[0];
  }
  const std::vector<std::size_t> perm = sort::argsort<double>(z);
  RaySorted sorted;
  sorted.z.resize(n);
  sorted.x.resize(n * dim);
  sorted.y.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t l = perm[p];
    sorted.z[p] = z[l];
    sorted.y[p] = data.y[l];
    for (std::size_t j = 0; j < dim; ++j) {
      sorted.x[p * dim + j] = data.x[l * dim + j];
    }
  }
  return sorted;
}

/// Per-worker scratch for the window ray sweep: one coefficient bucket per
/// scale. A candidate entering the z-window is filtered by the remaining
/// dimensions once — its pair coefficients land in the bucket of the first
/// scale that truly admits it (ρ ≤ c), and each scale drains its own bucket
/// before recombining. Buckets are re-zeroed as they drain, so the scratch
/// is clean for the next observation without a bulk clear.
struct RayWindowScratch {
  std::vector<double> bucket_s;  ///< k × (degree + 1), flattened
  std::vector<double> bucket_t;

  void resize(std::size_t k, std::size_t degree) {
    bucket_s.assign(k * (degree + 1), 0.0);
    bucket_t.assign(k * (degree + 1), 0.0);
  }
};

/// One observation's contribution to the squared-residual totals across all
/// scales via the superset window over the sorted first coordinate.
void window_observation_ray(const RaySorted& sorted, const RayContext& ctx,
                            std::span<const double> ratios,
                            std::span<const double> scales, std::size_t pos,
                            RayWindowScratch& scratch,
                            std::span<double> totals) {
  const std::size_t n = sorted.y.size();
  const std::size_t k = scales.size();
  const std::size_t terms = ctx.degree + 1;
  const double zi = sorted.z[pos];
  const double yi = sorted.y[pos];
  const std::span<const double> xi(sorted.x.data() + pos * ctx.dim, ctx.dim);

  // Moment sums over the truly admitted set, seeded with the self pair:
  // Π_j K(0) = c₀^p at power 0 (subtracted analytically at recombination,
  // exactly as in the per-row path).
  std::array<double, kMaxDegree + 1> s_m{};
  std::array<double, kMaxDegree + 1> t_m{};
  std::array<double, kMaxDegree + 1> w{};
  s_m[0] = ctx.c0_pow_dim;
  t_m[0] = ctx.c0_pow_dim * yi;

  // A candidate l enters the z-window at the first scale c ≥ |z_l − z_i|.
  // Its true admission scale is ρ = max_j |d_j|/r_j ≥ |z_l − z_i|, so the
  // bucket index (first grid scale ≥ ρ) is never one already swept.
  const auto park = [&](std::size_t l) {
    const std::span<const double> xl(sorted.x.data() + l * ctx.dim, ctx.dim);
    double rho = 0.0;
    for (std::size_t j = 0; j < ctx.dim; ++j) {
      rho = std::max(rho, std::abs(xi[j] - xl[j]) / ratios[j]);
    }
    const auto it = std::lower_bound(scales.begin(), scales.end(), rho);
    if (it == scales.end()) {
      return;  // beyond the grid: never admitted, no coefficient work
    }
    const std::size_t bucket =
        static_cast<std::size_t>(it - scales.begin());
    pair_coefficients(ctx, xi, xl, ratios, w);
    const double yl = sorted.y[l];
    double* bs = scratch.bucket_s.data() + bucket * terms;
    double* bt = scratch.bucket_t.data() + bucket * terms;
    for (std::size_t m = 0; m < terms; ++m) {
      bs[m] += w[m];
      bt[m] += yl * w[m];
    }
  };

  std::size_t lo = pos;  // inclusive left edge of the z-window
  std::size_t hi = pos;  // inclusive right edge
  for (std::size_t b = 0; b < k; ++b) {
    const double c = scales[b];
    while (lo > 0 && zi - sorted.z[lo - 1] <= c) {
      park(--lo);
    }
    while (hi + 1 < n && sorted.z[hi + 1] - zi <= c) {
      park(++hi);
    }

    // Drain this scale's bucket into the moment sums (and re-zero it: no
    // later candidate can land here, since its ρ exceeds the current c).
    double* bs = scratch.bucket_s.data() + b * terms;
    double* bt = scratch.bucket_t.data() + b * terms;
    for (std::size_t m = 0; m < terms; ++m) {
      s_m[m] += bs[m];
      t_m[m] += bt[m];
      bs[m] = 0.0;
      bt[m] = 0.0;
    }

    // Identical recombination to the per-row ray sweep.
    double num = 0.0;
    double den = 0.0;
    const double inv_c = 1.0 / c;
    double inv_pow = 1.0;
    for (std::size_t m = 0; m < terms; ++m) {
      num += t_m[m] * inv_pow;
      den += s_m[m] * inv_pow;
      inv_pow *= inv_c;
    }
    num -= ctx.c0_pow_dim * yi;
    den -= ctx.c0_pow_dim;
    if (den > 0.0) {
      const double e = yi - num / den;
      totals[b] += e * e;
    }
  }
}

}  // namespace

std::vector<double> default_ray_ratios(const data::MDataset& data) {
  data.validate();
  std::vector<double> ratios(data.dim);
  double largest = 0.0;
  for (std::size_t j = 0; j < data.dim; ++j) {
    ratios[j] = data.domain(j);
    largest = std::max(largest, ratios[j]);
  }
  // A constant dimension contributes |d_j| = 0 to every pair, so any
  // positive ratio admits it at every scale; clamp to the largest positive
  // domain (1.0 when all are degenerate) instead of emitting a zero ratio
  // the profile functions would reject.
  const double floor_ratio = largest > 0.0 ? largest : 1.0;
  for (double& r : ratios) {
    if (!(r > 0.0)) {
      r = floor_ratio;
    }
  }
  return ratios;
}

std::vector<double> multi_ray_cv_profile(const data::MDataset& data,
                                         std::span<const double> ratios,
                                         std::span<const double> scales,
                                         KernelType kernel) {
  check_inputs(data, ratios, scales, kernel);
  const RayContext ctx = make_context(data, kernel);
  std::vector<double> totals(scales.size(), 0.0);
  std::vector<double> rho_scratch;
  std::vector<std::size_t> idx_scratch;
  for (std::size_t i = 0; i < data.size(); ++i) {
    sweep_observation_ray(data, ctx, ratios, scales, i, rho_scratch,
                          idx_scratch, totals);
  }
  for (double& t : totals) {
    t /= static_cast<double>(data.size());
  }
  return totals;
}

std::vector<double> multi_ray_cv_profile_parallel(
    const data::MDataset& data, std::span<const double> ratios,
    std::span<const double> scales, KernelType kernel,
    parallel::ThreadPool* pool) {
  check_inputs(data, ratios, scales, kernel);
  const RayContext ctx = make_context(data, kernel);
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }
  const std::vector<parallel::BlockedRange> slices =
      parallel::partition_evenly(data.size(), pool->size());
  std::vector<std::vector<double>> parts(
      slices.size(), std::vector<double>(scales.size(), 0.0));

  parallel::parallel_for(
      slices.size(),
      [&](std::size_t s) {
        std::vector<double> rho_scratch;
        std::vector<std::size_t> idx_scratch;
        for (std::size_t i = slices[s].begin; i < slices[s].end; ++i) {
          sweep_observation_ray(data, ctx, ratios, scales, i, rho_scratch,
                                idx_scratch, parts[s]);
        }
      },
      pool);

  std::vector<double> totals(scales.size(), 0.0);
  for (const auto& part : parts) {
    for (std::size_t b = 0; b < totals.size(); ++b) {
      totals[b] += part[b];
    }
  }
  for (double& t : totals) {
    t /= static_cast<double>(data.size());
  }
  return totals;
}

std::vector<double> multi_ray_cv_profile_window(const data::MDataset& data,
                                                std::span<const double> ratios,
                                                std::span<const double> scales,
                                                KernelType kernel) {
  check_inputs(data, ratios, scales, kernel);
  const RayContext ctx = make_context(data, kernel);
  const RaySorted sorted = sort_ray_dataset(data, ratios);
  std::vector<double> totals(scales.size(), 0.0);
  RayWindowScratch scratch;
  scratch.resize(scales.size(), ctx.degree);
  for (std::size_t pos = 0; pos < data.size(); ++pos) {
    window_observation_ray(sorted, ctx, ratios, scales, pos, scratch, totals);
  }
  for (double& t : totals) {
    t /= static_cast<double>(data.size());
  }
  return totals;
}

std::vector<double> multi_ray_cv_profile_window_parallel(
    const data::MDataset& data, std::span<const double> ratios,
    std::span<const double> scales, KernelType kernel,
    parallel::ThreadPool* pool) {
  check_inputs(data, ratios, scales, kernel);
  const RayContext ctx = make_context(data, kernel);
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }
  // One global sort, on the calling thread, shared read-only by workers.
  const RaySorted sorted = sort_ray_dataset(data, ratios);
  const std::vector<parallel::BlockedRange> slices =
      parallel::partition_evenly(data.size(), pool->size());
  std::vector<std::vector<double>> parts(
      slices.size(), std::vector<double>(scales.size(), 0.0));

  parallel::parallel_for(
      slices.size(),
      [&](std::size_t s) {
        RayWindowScratch scratch;
        scratch.resize(scales.size(), ctx.degree);
        for (std::size_t pos = slices[s].begin; pos < slices[s].end; ++pos) {
          window_observation_ray(sorted, ctx, ratios, scales, pos, scratch,
                                 parts[s]);
        }
      },
      pool);

  std::vector<double> totals(scales.size(), 0.0);
  for (const auto& part : parts) {
    for (std::size_t b = 0; b < totals.size(); ++b) {
      totals[b] += part[b];
    }
  }
  for (double& t : totals) {
    t /= static_cast<double>(data.size());
  }
  return totals;
}

MultiSelectionResult multi_ray_select(const data::MDataset& data,
                                      std::span<const double> ratios,
                                      const BandwidthGrid& scales,
                                      KernelType kernel,
                                      SweepAlgorithm algorithm) {
  const bool window = algorithm == SweepAlgorithm::kWindow;
  const std::vector<double> profile =
      window ? multi_ray_cv_profile_window(data, ratios, scales.values(),
                                           kernel)
             : multi_ray_cv_profile(data, ratios, scales.values(), kernel);
  std::size_t best = 0;
  for (std::size_t b = 1; b < profile.size(); ++b) {
    if (profile[b] < profile[best]) {
      best = b;
    }
  }
  MultiSelectionResult result;
  result.bandwidths.resize(data.dim);
  for (std::size_t j = 0; j < data.dim; ++j) {
    result.bandwidths[j] = scales[best] * ratios[j];
  }
  result.cv_score = profile[best];
  result.evaluations = scales.size();
  result.method = std::string(window ? "multi-ray-window(" :
                                       "multi-ray-sweep(") +
                  std::string(to_string(kernel)) + ")";
  return result;
}

}  // namespace kreg
