#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/kernels.hpp"
#include "core/window_sweep.hpp"
#include "data/dataset.hpp"
#include "parallel/thread_pool.hpp"

namespace kreg {

/// Configuration of the batched (SELL-C-σ-style) window-sweep execution
/// layer: observations are grouped into C-wide lanes with
/// structure-of-arrays state so the sweep's hot loops vectorize, and
/// batches are σ-sorted by admission-window length so the lanes of one
/// batch do similar work (small zero-padded tails, coherent simulated
/// warps). See core/detail/batched_lanes.hpp for the kernel itself.
struct BatchedSweep {
  /// Lanes per batch. 0 = auto (kDefaultLaneWidth); 1 runs the batch
  /// machinery degenerately (the parity anchor); 4/8/16 are the vector
  /// widths. Any other value throws.
  std::size_t lane_width = 0;
  /// Sort each σ-scope's observations by their admission-window length at
  /// h_max (descending, stable) before grouping into batches. Purely a
  /// scheduling permutation: profiles are bitwise identical either way.
  bool sigma_sort = true;
};

/// The auto lane width: 8 doubles span two AVX2 vectors (one AVX-512), and
/// 8 floats exactly one AVX2 vector.
inline constexpr std::size_t kDefaultLaneWidth = 8;

/// Resolves a requested lane width: 0 → kDefaultLaneWidth; 1/4/8/16 pass
/// through; anything else throws std::invalid_argument.
std::size_t resolve_lane_width(std::size_t requested);

/// Per-observation admission-window length |{l : |x_l − x_pos| ≤ h_max}| on
/// the sorted array — the σ-sort key, and the exact number of elements the
/// sweep will admit for that observation across the whole grid. One O(n)
/// two-pointer pass (both bounds are monotone in pos).
template <class Scalar>
std::vector<std::size_t> admission_window_lengths(
    std::span<const Scalar> xs_sorted, Scalar h_max);

extern template std::vector<std::size_t> admission_window_lengths<float>(
    std::span<const float>, float);
extern template std::vector<std::size_t> admission_window_lengths<double>(
    std::span<const double>, double);

/// The σ-sorted batch order for rows [begin, end): returns row indices
/// *relative to begin*, grouped in σ-scopes of `scope` rows (the last
/// scope may be short; 0 = one scope spanning the whole range), each scope
/// stably sorted by descending `lengths[begin + r]` when `sigma_sort` is
/// set, identity otherwise. Consecutive lane_width entries of the result
/// form one batch.
std::vector<std::uint32_t> sigma_batch_order(
    std::span<const std::size_t> lengths, std::size_t begin, std::size_t end,
    std::size_t scope, bool sigma_sort);

/// The batched window-sweep CV profile: same contract as
/// `window_cv_profile_tiled` (tiles scheduled across the pool, k-blocks
/// innermost, deterministic tile-order combination), with each tile's
/// observations executed as σ-sorted C-wide lane batches. Residuals are
/// staged per tile and folded in ascending observation order, so the
/// result is **bitwise identical** to `window_cv_profile_tiled` with the
/// same tiling — and to the sequential `window_cv_profile` whenever one
/// tile covers the dataset — for every lane width and σ setting.
std::vector<double> window_cv_profile_batched(
    const data::Dataset& data, std::span<const double> grid,
    KernelType kernel, Precision precision = Precision::kDouble,
    BatchedSweep batched = {}, HostTiling tiling = {},
    parallel::ThreadPool* pool = nullptr);

}  // namespace kreg
