#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/batch_stats.hpp"
#include "core/kernels.hpp"
#include "core/window_sweep.hpp"
#include "data/dataset.hpp"
#include "parallel/thread_pool.hpp"

namespace kreg {

/// How each σ-scope's observations are ordered before being grouped into
/// C-wide lane batches. Every policy is purely a scheduling permutation:
/// profiles are bitwise identical across all three.
enum class SigmaPolicy : std::uint8_t {
  /// Identity order (ascending sorted position).
  kNone = 0,
  /// Descending admission-window length at h_max, stable — the classic
  /// SELL-C-σ key: lanes of one batch do similar numbers of phase-2
  /// steps, so zero-padded tail work stays small.
  kLength,
  /// Two-key: primary by admission-window *position* (the window's lo
  /// index at h_max, bucketed to cache-line-sized ranges, ascending),
  /// secondary by length (descending), stable. Lanes of one batch admit
  /// from overlapping index ranges, so phase-2 loads hit the same cache
  /// lines and the contiguous-run transpose fast path fires (see
  /// detail/batched_lanes_contig.hpp) — while the in-bucket length key
  /// keeps the padding-tail benefit of kLength.
  kPositionLength,
};

/// "none" / "length" / "position-length".
const char* to_string(SigmaPolicy policy);

/// Strict inverse of to_string: anything else throws std::invalid_argument
/// naming the offending text and the accepted values.
SigmaPolicy parse_sigma_policy(std::string_view text);

/// Position-bucket width for SigmaPolicy::kPositionLength: one 64-byte
/// cache line of elements (8 doubles, 16 floats).
constexpr std::size_t sigma_position_bucket(std::size_t scalar_bytes) {
  return 64 / scalar_bytes;
}

/// The requested prefetch distance that means "consult KREG_PREFETCH_DIST,
/// default off" (see resolve_prefetch_distance).
inline constexpr std::size_t kPrefetchFromEnv = static_cast<std::size_t>(-1);

/// Upper bound on an explicit prefetch distance; beyond this the prefetch
/// would target lines evicted long before use.
inline constexpr std::size_t kMaxPrefetchDistance = 1024;

/// Parses a prefetch distance: base-10 digits only (so "-1", "4x", "" and
/// friends are rejected with a clear error), at most kMaxPrefetchDistance.
/// 0 = prefetch off.
std::size_t parse_prefetch_distance(std::string_view text);

/// Resolves a requested prefetch distance: kPrefetchFromEnv reads
/// KREG_PREFETCH_DIST (unset/empty → 0 = off, otherwise parsed strictly);
/// explicit values pass through after the kMaxPrefetchDistance check.
std::size_t resolve_prefetch_distance(std::size_t requested);

/// Configuration of the batched (SELL-C-σ-style) window-sweep execution
/// layer: observations are grouped into C-wide lanes with
/// structure-of-arrays state so the sweep's hot loops vectorize, and
/// batches are σ-sorted so the lanes of one batch do similar work from
/// nearby positions (small zero-padded tails, coherent simulated warps,
/// cache-resident gathers). See core/detail/batched_lanes.hpp for the
/// kernel itself.
struct BatchedSweep {
  /// Lanes per batch. 0 = auto (kDefaultLaneWidth); 1 runs the batch
  /// machinery degenerately (the parity anchor); 4/8/16 are the vector
  /// widths. Any other value throws.
  std::size_t lane_width = 0;
  /// σ-scope ordering policy (see SigmaPolicy). Purely a scheduling
  /// permutation: profiles are bitwise identical for every policy.
  SigmaPolicy sigma = SigmaPolicy::kPositionLength;
  /// Software-prefetch distance, in phase-2 steps ahead, for the
  /// lane-resume inner loops. 0 = off; kPrefetchFromEnv (the default)
  /// reads KREG_PREFETCH_DIST. Observational only — never changes values.
  std::size_t prefetch_distance = kPrefetchFromEnv;
};

/// The auto lane width: 8 doubles span two AVX2 vectors (one AVX-512), and
/// 8 floats exactly one AVX2 vector.
inline constexpr std::size_t kDefaultLaneWidth = 8;

/// Resolves a requested lane width: 0 → kDefaultLaneWidth; 1/4/8/16 pass
/// through; anything else throws std::invalid_argument.
std::size_t resolve_lane_width(std::size_t requested);

/// Per-observation admission windows at h_max on the sorted array: `lo[pos]`
/// is the smallest index with |x_lo − x_pos| ≤ h_max (the σ position key)
/// and `length[pos]` = |{l : |x_l − x_pos| ≤ h_max}| (the σ length key and
/// the exact number of elements the sweep will admit for that observation
/// across the whole grid). One O(n) two-pointer pass (both bounds are
/// monotone in pos).
struct AdmissionWindows {
  std::vector<std::size_t> lo;
  std::vector<std::size_t> length;
};

template <class Scalar>
AdmissionWindows admission_windows(std::span<const Scalar> xs_sorted,
                                   Scalar h_max);

extern template AdmissionWindows admission_windows<float>(
    std::span<const float>, float);
extern template AdmissionWindows admission_windows<double>(
    std::span<const double>, double);

/// The length component alone (kept for call sites that only need the
/// element counts, e.g. the bench's exact work accounting).
template <class Scalar>
std::vector<std::size_t> admission_window_lengths(
    std::span<const Scalar> xs_sorted, Scalar h_max);

extern template std::vector<std::size_t> admission_window_lengths<float>(
    std::span<const float>, float);
extern template std::vector<std::size_t> admission_window_lengths<double>(
    std::span<const double>, double);

/// The σ-sorted batch order for rows [begin, end): returns row indices
/// *relative to begin*, grouped in σ-scopes of `scope` rows (the last
/// scope may be short; 0 = one scope spanning the whole range), each scope
/// stably ordered per `policy`. Consecutive lane_width entries of the
/// result form one batch. `los` is only read under kPositionLength (pass
/// AdmissionWindows::lo; it must cover [begin, end) then);
/// `position_bucket` is the position-key bucket width in elements
/// (sigma_position_bucket(sizeof(Scalar)); values < 1 are clamped to 1).
std::vector<std::uint32_t> sigma_batch_order(
    std::span<const std::size_t> lengths, std::span<const std::size_t> los,
    std::size_t begin, std::size_t end, std::size_t scope,
    SigmaPolicy policy, std::size_t position_bucket);

/// Length-only convenience overload (the PR 6 surface): sigma_sort maps to
/// kLength / kNone.
std::vector<std::uint32_t> sigma_batch_order(
    std::span<const std::size_t> lengths, std::size_t begin, std::size_t end,
    std::size_t scope, bool sigma_sort);

/// The batched window-sweep CV profile: same contract as
/// `window_cv_profile_tiled` (tiles scheduled across the pool, k-blocks
/// innermost, deterministic tile-order combination), with each tile's
/// observations executed as σ-sorted C-wide lane batches. Residuals are
/// staged per tile and folded in ascending observation order, so the
/// result is **bitwise identical** to `window_cv_profile_tiled` with the
/// same tiling — and to the sequential `window_cv_profile` whenever one
/// tile covers the dataset — for every lane width, σ policy, and prefetch
/// distance. `stats`, when non-null, receives the summed contiguous-run /
/// gather step ledger of every tile.
std::vector<double> window_cv_profile_batched(
    const data::Dataset& data, std::span<const double> grid,
    KernelType kernel, Precision precision = Precision::kDouble,
    BatchedSweep batched = {}, HostTiling tiling = {},
    parallel::ThreadPool* pool = nullptr, BatchRunStats* stats = nullptr);

}  // namespace kreg
