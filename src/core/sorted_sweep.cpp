#include "core/sorted_sweep.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/validate_grid.hpp"
#include "parallel/parallel_for.hpp"
#include "sort/iterative_quicksort.hpp"
#include "sort/partition.hpp"

namespace kreg {

std::string_view to_string(Precision precision) noexcept {
  return precision == Precision::kFloat ? "float" : "double";
}

std::string_view to_string(SweepAlgorithm algorithm) noexcept {
  switch (algorithm) {
    case SweepAlgorithm::kPerRowSort:
      return "per-row-sort";
    case SweepAlgorithm::kWindow:
      return "window";
  }
  return "unknown";
}

template <class Scalar>
void sweep_observation(std::span<const double> x, std::span<const double> y,
                       std::size_t i, std::span<const double> grid,
                       const SweepPolynomial& poly,
                       SweepWorkspace<Scalar>& workspace,
                       std::span<Scalar> out_sq_residuals) {
  const std::size_t n = x.size();
  const std::size_t k = grid.size();
  workspace.resize(n);
  std::span<Scalar> dist(workspace.dist);
  std::span<Scalar> yrow(workspace.yrow);

  // Fill this thread's row of the distance and Y "matrices" (paper §IV-B:
  // "Each thread j fills in n values of the abs(X_i − X_j) and Y_i
  // matrices").
  const Scalar xi = static_cast<Scalar>(x[i]);
  for (std::size_t l = 0; l < n; ++l) {
    dist[l] = std::abs(static_cast<Scalar>(x[l]) - xi);
    yrow[l] = static_cast<Scalar>(y[l]);
  }

  // "Next, it sorts both of these matrices in order of abs(X_i − X_j)" —
  // the iterative quicksort with Y as the auxiliary variable, truncated at
  // the largest grid bandwidth: candidates beyond grid.back() can never be
  // admitted, so they are partitioned out before the sort and only the
  // admissible prefix gets sorted.
  const std::size_t admissible = sort::partition_kv(
      dist, yrow, static_cast<Scalar>(grid.back()));
  sort::iterative_quicksort_kv(dist.first(admissible),
                               yrow.first(admissible));

  // Incremental moment accumulation across the ascending grid.
  const std::size_t terms = poly.max_power + 1;
  Scalar s_m[SweepPolynomial::kMaxPower + 1] = {};  // Σ |d|^m over admitted l
  Scalar t_m[SweepPolynomial::kMaxPower + 1] = {};  // Σ Y_l |d|^m
  const Scalar yi = static_cast<Scalar>(y[i]);

  std::size_t p = 0;  // observations admitted so far (dist[0..p) <= h)
  for (std::size_t b = 0; b < k; ++b) {
    const Scalar h = static_cast<Scalar>(grid[b]);
    while (p < admissible && dist[p] <= h) {
      // Powers |d|^m accumulated incrementally: pw steps 1, |d|, |d|², …
      Scalar pw = Scalar{1};
      for (std::size_t m = 0; m < terms; ++m) {
        s_m[m] += pw;
        t_m[m] += yrow[p] * pw;
        pw *= dist[p];
      }
      ++p;
    }

    // Recombine moments into the LOO numerator/denominator. The self term
    // sits at distance 0 (always admitted): it contributes 1 to S_0 and
    // Y_i to T_0 and nothing to higher moments, so subtracting it is exact.
    Scalar numerator = Scalar{0};
    Scalar denominator = Scalar{0};
    const Scalar inv_h = Scalar{1} / h;
    Scalar inv_pow = Scalar{1};  // h^(−m)
    for (std::size_t m = 0; m < terms; ++m) {
      const auto c = static_cast<Scalar>(poly.coeff[m]);
      if (c != Scalar{0}) {
        const Scalar s_excl = m == 0 ? s_m[m] - Scalar{1} : s_m[m];
        const Scalar t_excl = m == 0 ? t_m[m] - yi : t_m[m];
        numerator += c * t_excl * inv_pow;
        denominator += c * s_excl * inv_pow;
      }
      inv_pow *= inv_h;
    }

    if (denominator > Scalar{0}) {
      const Scalar e = yi - numerator / denominator;
      out_sq_residuals[b] = e * e;
    } else {
      out_sq_residuals[b] = Scalar{0};  // M(X_i) = 0: no valid neighbour
    }
  }
}

template void sweep_observation<float>(std::span<const double>,
                                       std::span<const double>, std::size_t,
                                       std::span<const double>,
                                       const SweepPolynomial&,
                                       SweepWorkspace<float>&,
                                       std::span<float>);
template void sweep_observation<double>(std::span<const double>,
                                        std::span<const double>, std::size_t,
                                        std::span<const double>,
                                        const SweepPolynomial&,
                                        SweepWorkspace<double>&,
                                        std::span<double>);

namespace {

void check_profile_inputs(const data::Dataset& data,
                          std::span<const double> grid, KernelType kernel) {
  if (data.empty()) {
    throw std::invalid_argument("sweep_cv_profile: empty dataset");
  }
  validate_bandwidth_grid(grid, "sweep_cv_profile");
  if (!is_sweepable(kernel)) {
    throw std::invalid_argument(
        "sweep_cv_profile: kernel '" + std::string(to_string(kernel)) +
        "' is not supported by the sorting-based sweep; use the naive path");
  }
}

template <class Scalar>
std::vector<double> profile_sequential(const data::Dataset& data,
                                       std::span<const double> grid,
                                       KernelType kernel) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const SweepPolynomial poly = sweep_polynomial(kernel);

  std::vector<double> totals(k, 0.0);
  SweepWorkspace<Scalar> workspace;
  std::vector<Scalar> residuals(k);
  for (std::size_t i = 0; i < n; ++i) {
    sweep_observation<Scalar>(data.x, data.y, i, grid, poly, workspace,
                              residuals);
    for (std::size_t b = 0; b < k; ++b) {
      totals[b] += static_cast<double>(residuals[b]);
    }
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

template <class Scalar>
std::vector<double> profile_parallel(const data::Dataset& data,
                                     std::span<const double> grid,
                                     KernelType kernel,
                                     parallel::ThreadPool* pool) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const SweepPolynomial poly = sweep_polynomial(kernel);
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }

  // One private accumulator per worker slice; combined in slice order so
  // the result is independent of scheduling.
  const std::vector<parallel::BlockedRange> slices =
      parallel::partition_evenly(n, pool->size());
  std::vector<std::vector<double>> partials(slices.size(),
                                            std::vector<double>(k, 0.0));

  parallel::parallel_for(
      slices.size(),
      [&](std::size_t s) {
        SweepWorkspace<Scalar> workspace;
        std::vector<Scalar> residuals(k);
        std::vector<double>& acc = partials[s];
        for (std::size_t i = slices[s].begin; i < slices[s].end; ++i) {
          sweep_observation<Scalar>(data.x, data.y, i, grid, poly, workspace,
                                    residuals);
          for (std::size_t b = 0; b < k; ++b) {
            acc[b] += static_cast<double>(residuals[b]);
          }
        }
      },
      pool);

  std::vector<double> totals(k, 0.0);
  for (const std::vector<double>& partial : partials) {
    for (std::size_t b = 0; b < k; ++b) {
      totals[b] += partial[b];
    }
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

}  // namespace

std::vector<double> sweep_cv_profile(const data::Dataset& data,
                                     std::span<const double> grid,
                                     KernelType kernel, Precision precision) {
  check_profile_inputs(data, grid, kernel);
  return precision == Precision::kFloat
             ? profile_sequential<float>(data, grid, kernel)
             : profile_sequential<double>(data, grid, kernel);
}

std::vector<double> sweep_cv_profile_parallel(const data::Dataset& data,
                                              std::span<const double> grid,
                                              KernelType kernel,
                                              Precision precision,
                                              parallel::ThreadPool* pool) {
  check_profile_inputs(data, grid, kernel);
  return precision == Precision::kFloat
             ? profile_parallel<float>(data, grid, kernel, pool)
             : profile_parallel<double>(data, grid, kernel, pool);
}

}  // namespace kreg
