#pragma once

#include <cstddef>
#include <functional>

namespace kreg {

/// Result of a one-dimensional scalar minimization.
struct OptimizeResult {
  double x = 0.0;              ///< minimizer found
  double fx = 0.0;             ///< objective at x
  std::size_t evaluations = 0; ///< number of objective calls
  bool converged = false;      ///< tolerance met within the iteration budget
};

/// Options shared by the scalar minimizers.
struct OptimizeOptions {
  double x_tol = 1e-6;          ///< absolute tolerance on the bracket width
  std::size_t max_iterations = 200;
};

/// Golden-section search for a minimum of f on [lo, hi].
///
/// Derivative-free bracketing method: guaranteed to converge to *a* local
/// minimum inside the bracket, but — as the paper stresses for the CV
/// objective, which "is not necessarily concave" (unimodal) — the result
/// may be a non-global minimum. This is the behaviour of the numerical-
/// optimization baselines (Programs 1–2). Requires lo < hi.
OptimizeResult golden_section(const std::function<double(double)>& f,
                              double lo, double hi,
                              const OptimizeOptions& options = {});

/// Brent's method (golden section + successive parabolic interpolation) on
/// [lo, hi]: the classic R `optimize()` algorithm, which the R baselines in
/// the paper rely on. Faster than pure golden section on smooth objectives;
/// same local-minimum caveat. Requires lo < hi.
OptimizeResult brent(const std::function<double(double)>& f, double lo,
                     double hi, const OptimizeOptions& options = {});

/// Multistart wrapper: splits [lo, hi] into `starts` sub-brackets, runs the
/// given minimizer in each, and returns the best result (evaluations are
/// summed). This is the mitigation the np authors themselves suggest —
/// "run the algorithm multiple times with different initial values to
/// ensure that one obtains a global solution" — at a `starts`-fold cost.
OptimizeResult multistart(const std::function<double(double)>& f, double lo,
                          double hi, std::size_t starts,
                          const std::function<OptimizeResult(
                              const std::function<double(double)>&, double,
                              double, const OptimizeOptions&)>& method,
                          const OptimizeOptions& options = {});

}  // namespace kreg
