#pragma once

#include <vector>

#include "core/spmd_selector.hpp"

namespace kreg {

/// Grid selection across multiple SPMD devices.
///
/// The paper's test machine carried *two* Tesla S10 GPUs but the published
/// program used one; this selector implements the natural extension it
/// leaves on the table. Observations are partitioned into contiguous
/// slices, one per device. Each device runs the same main kernel on its
/// slice (the full X/Y arrays are replicated — they are O(n); the n×n
/// matrices shrink to slice×n, so d devices multiply the feasible sample
/// size by ~√d), reduces its slice's squared residuals per bandwidth, and
/// the host combines the partial sums before the final argmin reduction on
/// device 0.
///
/// Uses the same SpmdSelectorConfig as the single-device selector;
/// streaming mode composes with it.
class MultiDeviceGridSelector final : public Selector {
 public:
  /// All devices must outlive the selector. Throws std::invalid_argument
  /// when `devices` is empty or contains a null pointer.
  MultiDeviceGridSelector(std::vector<spmd::Device*> devices,
                          SpmdSelectorConfig config = {});

  SelectionResult select(const data::Dataset& data,
                         const BandwidthGrid& grid) const override;
  std::string name() const override;

  /// Per-device footprint for an (n, k) problem split across `devices`
  /// devices (worst slice).
  static std::size_t estimated_bytes_per_device(std::size_t n, std::size_t k,
                                                std::size_t devices,
                                                Precision precision,
                                                bool streaming);

 private:
  std::vector<spmd::Device*> devices_;
  SpmdSelectorConfig config_;
};

}  // namespace kreg
