#pragma once

#include <vector>

#include "core/spmd_selector.hpp"

namespace kreg {

/// Grid selection across multiple SPMD devices.
///
/// The paper's test machine carried *two* Tesla S10 GPUs but the published
/// program used one; this selector implements the natural extension it
/// leaves on the table. Observations are partitioned into contiguous
/// slices, one per device. Each device runs the same main kernel on its
/// slice (the full X/Y arrays are replicated — they are O(n); the n×n
/// matrices shrink to slice×n, so d devices multiply the feasible sample
/// size by ~√d), reduces its slice's squared residuals per bandwidth, and
/// the host combines the partial sums before the final argmin reduction on
/// device 0.
///
/// Uses the same SpmdSelectorConfig as the single-device selector;
/// streaming mode composes with it. With the window algorithm (the config
/// default) the shards become (device × k-block): each device sweeps its
/// observation slice over the bandwidth grid in k-blocks sized to its own
/// memory budget (see core/streaming.hpp), carrying the slice's window
/// state across blocks, so heterogeneous devices each stream at their own
/// block size while the host accumulates one combined score per bandwidth.
class MultiDeviceGridSelector final : public Selector {
 public:
  /// All devices must outlive the selector. Throws std::invalid_argument
  /// when `devices` is empty or contains a null pointer.
  MultiDeviceGridSelector(std::vector<spmd::Device*> devices,
                          SpmdSelectorConfig config = {});

  SelectionResult select(const data::Dataset& data,
                         const BandwidthGrid& grid) const override;
  std::string name() const override;

  /// Per-device footprint for an (n, k) problem split across `devices`
  /// devices (worst slice). For the window algorithm, `k_block` is the
  /// resident bandwidth block (0 = the whole grid) and the estimate covers
  /// the replicated sorted arrays, the slice's carried window state, and
  /// one slice×k_block residual block.
  static std::size_t estimated_bytes_per_device(
      std::size_t n, std::size_t k, std::size_t devices, Precision precision,
      bool streaming, SweepAlgorithm algorithm = SweepAlgorithm::kPerRowSort,
      std::size_t k_block = 0, KernelType kernel = KernelType::kEpanechnikov);

 private:
  std::vector<spmd::Device*> devices_;
  SpmdSelectorConfig config_;
};

}  // namespace kreg
