#include "core/spmd_selector.hpp"

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/batched_sweep.hpp"
#include "core/detail/batched_lanes.hpp"
#include "core/detail/device_sweep.hpp"
#include "core/detail/lane_reduce.hpp"
#include "core/window_sweep.hpp"

namespace kreg {

std::string_view to_string(ResidualLayout layout) noexcept {
  switch (layout) {
    case ResidualLayout::kObservationMajor:
      return "observation-major";
    case ResidualLayout::kBandwidthMajor:
      return "bandwidth-major";
  }
  return "unknown";
}

SpmdGridSelector::SpmdGridSelector(spmd::Device& device,
                                   SpmdSelectorConfig config)
    : device_(device), config_(config) {
  if (config_.threads_per_block == 0) {
    throw std::invalid_argument("SpmdGridSelector: threads_per_block == 0");
  }
  (void)resolve_lane_width(config_.lane_width);  // reject bad widths early
  config_.prefetch_distance =
      resolve_prefetch_distance(config_.prefetch_distance);
}

std::size_t SpmdGridSelector::estimated_bytes(std::size_t n, std::size_t k,
                                              Precision precision,
                                              bool streaming,
                                              SweepAlgorithm algorithm) {
  const std::size_t elem =
      precision == Precision::kFloat ? sizeof(float) : sizeof(double);
  if (algorithm == SweepAlgorithm::kWindow) {
    // Sorted x + y + scores + the n×k residual matrix; no row matrices and
    // no per-thread sum matrices — the window sweep recombines in place.
    return (2 * n + k + n * k) * elem;
  }
  // x + y + scores + two n×k sum matrices + n×k residual matrix …
  std::size_t elems = 2 * n + k + 3 * n * k;
  // … plus the two n×n matrices unless streaming.
  if (!streaming) {
    elems += 2 * n * n;
  }
  return elems * elem;
}

std::size_t SpmdGridSelector::estimated_streamed_bytes(std::size_t n,
                                                       std::size_t k_block,
                                                       Precision precision,
                                                       KernelType kernel) {
  const std::size_t elem =
      precision == Precision::kFloat ? sizeof(float) : sizeof(double);
  const std::size_t terms = sweep_polynomial(kernel).max_power + 1;
  // Sorted x + y, the carried moment sums S_m/T_m, the two window pointers,
  // and one resident n×k_block residual block.
  return 2 * n * elem + 2 * n * terms * elem + 2 * n * sizeof(std::size_t) +
         n * k_block * elem;
}

namespace {

/// The σ-order for a lane-batched window launch: host-side launch metadata
/// mapping each launch row of [begin, end) to the sorted-array observation
/// (relative to begin) its lane sweeps. σ-scopes align with the launch
/// blocks (scope = threads_per_block), so the permutation never crosses a
/// block boundary — lanes of one dispatch always come from one block.
template <class Scalar>
std::vector<std::uint32_t> sigma_launch_order(std::span<const Scalar> host_x,
                                              Scalar reach, std::size_t begin,
                                              std::size_t end, std::size_t tpb,
                                              SigmaPolicy policy) {
  const AdmissionWindows win = admission_windows<Scalar>(host_x, reach);
  return sigma_batch_order(win.length, win.lo, begin, end, tpb, policy,
                           sigma_position_bucket(sizeof(Scalar)));
}

/// Single-block cooperative sum over values[j * stride + offset] for
/// j < count: the observation-major score reduction, shared by the resident
/// sweep (stride = k) and the streamed sweep (stride = k_block).
template <class Scalar>
Scalar strided_score_reduce(spmd::Device& device,
                            spmd::MemView<Scalar> values, std::size_t count,
                            std::size_t stride, std::size_t offset,
                            std::size_t block_dim) {
  Scalar total{};
  device.launch_cooperative(
      "strided_score_reduce", spmd::LaunchConfig{1, block_dim},
      block_dim * sizeof(Scalar), [&](spmd::BlockCtx& ctx) {
        auto shared = ctx.template shared_as<Scalar>(block_dim);
        ctx.for_each_thread([&](std::size_t tid) {
          Scalar acc{};
          for (std::size_t j = tid; j < count; j += block_dim) {
            acc += values[j * stride + offset];
          }
          shared[tid] = acc;
        });
        for (std::size_t s = block_dim / 2; s > 0; s /= 2) {
          ctx.for_each_thread([&](std::size_t tid) {
            if (tid < s) {
              shared[tid] += shared[tid + s];
            }
          });
        }
        total = shared[0];
      });
  return total;
}

/// The k-block streamed window sweep (tentpole of the streaming extension):
/// device memory is O(n + n·k_block) — sorted x/y, the per-observation
/// carry state (two window pointers + moment sums), and ONE resident
/// residual block that every bandwidth block streams through. Each pass
/// launches the sweep over its grid slice resuming from the carried state,
/// reduces the block to its per-bandwidth sums immediately, and keeps only
/// the k score totals plus a running argmin on the host. Because the carry
/// makes each slice perform exactly the admissions and recombinations the
/// full-grid sweep would, the streamed profile matches resident bitwise.
/// Constant memory holds only the current slice, so grids beyond the 8 KB
/// cache cap stream through as well.
template <class Scalar>
SelectionResult run_streamed_window_selection(
    spmd::Device& device, const SpmdSelectorConfig& config,
    const std::vector<Scalar>& host_x, const std::vector<Scalar>& host_y,
    const std::vector<Scalar>& host_grid, const BandwidthGrid& grid,
    const StreamingPlan& plan, std::size_t tpb, const SweepPolynomial& poly,
    std::string method_name) {
  const std::size_t n = host_x.size();
  const std::size_t k = host_grid.size();
  const std::size_t terms = poly.max_power + 1;
  const bool bandwidth_major = config.layout == ResidualLayout::kBandwidthMajor;

  spmd::DeviceBuffer<Scalar> d_x = device.alloc_global<Scalar>(n, "x");
  spmd::DeviceBuffer<Scalar> d_y = device.alloc_global<Scalar>(n, "y");
  device.copy_to_device(d_x, std::span<const Scalar>(host_x));
  device.copy_to_device(d_y, std::span<const Scalar>(host_y));

  // O(n) carry state surviving across block launches.
  spmd::DeviceBuffer<std::size_t> d_lo =
      device.alloc_global<std::size_t>(n, "window-lo");
  spmd::DeviceBuffer<std::size_t> d_hi =
      device.alloc_global<std::size_t>(n, "window-hi");
  spmd::DeviceBuffer<Scalar> d_sm =
      device.alloc_global<Scalar>(n * terms, "moment-s");
  spmd::DeviceBuffer<Scalar> d_tm =
      device.alloc_global<Scalar>(n * terms, "moment-t");

  // The one resident residual block, reused by every pass.
  spmd::DeviceBuffer<Scalar> d_resid =
      device.alloc_global<Scalar>(n * plan.k_block, "residual-block");

  std::span<const Scalar> xs = d_x.span();
  std::span<const Scalar> ys = d_y.span();
  spmd::MemView<std::size_t> lo_all = d_lo.view();
  spmd::MemView<std::size_t> hi_all = d_hi.view();
  spmd::MemView<Scalar> sm_all = d_sm.view();
  spmd::MemView<Scalar> tm_all = d_tm.view();
  spmd::MemView<Scalar> resid_all = d_resid.view();

  const spmd::LaunchConfig main_cfg = spmd::LaunchConfig::cover(n, tpb);
  const std::size_t block_dim =
      spmd::detail::reduction_block_dim(device, tpb);

  // Lane batching: σ-order computed once (the windows only grow, so the
  // h_max key is valid for every k-block) and captured as launch metadata.
  const std::size_t lane_width = resolve_lane_width(config.lane_width);
  std::vector<std::uint32_t> order;
  if (lane_width > 1) {
    order = sigma_launch_order<Scalar>(std::span<const Scalar>(host_x),
                                       host_grid.back(), 0, n, tpb,
                                       config.sigma);
  }
  const std::span<const std::uint32_t> order_s(order);

  std::vector<double> cv(k);
  std::size_t best_index = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t b0 = 0; b0 < k; b0 += plan.k_block) {
    const std::size_t kb = std::min(plan.k_block, k - b0);
    const std::vector<Scalar> host_block(host_grid.begin() + b0,
                                         host_grid.begin() + b0 + kb);
    spmd::ConstantBuffer<Scalar> c_block =
        device.upload_constant<Scalar>(host_block, "bandwidth-grid-block");
    spmd::MemView<const Scalar> hs = c_block.view();
    const bool first = b0 == 0;

    if (lane_width > 1) {
      // Batched fast path: each dispatch loads C observations' carried
      // window state into SoA lane storage, resumes the slice in lockstep,
      // and stores it back. Carry and residuals stay keyed by observation,
      // so the pass is bitwise identical to the scalar kernel below.
      detail::with_lane_width(lane_width, [&](auto width_c) {
        constexpr std::size_t C = decltype(width_c)::value;
        device.launch_lanes("cv_sweep_kblock", main_cfg, C,
                            [&, kb, first](const spmd::LaneCtx& t) {
          detail::LaneBatch<Scalar, C> st;
          st.lanes = 0;
          for (std::size_t l = 0; l < t.lanes; ++l) {
            const std::size_t j = t.global_base() + l;
            if (j < n) {
              st.pos[st.lanes++] = order_s[j];
            }
          }
          if (st.lanes == 0) {
            return;  // all-padding dispatch in the last block
          }
          const auto key = [&st](std::size_t l) { return st.pos[l]; };
          if (first) {
            detail::batch_seed(st, xs, ys);
          } else {
            detail::batch_load(st, xs, ys, lo_all, hi_all, sm_all, tm_all,
                               terms, key);
          }
          detail::batch_resume(st, xs, ys, hs, poly,
                               [&](std::size_t b, std::size_t l, Scalar sq) {
            const std::size_t j = st.pos[l];
            resid_all[bandwidth_major ? b * n + j : j * kb + b] = sq;
          }, config.prefetch_distance);
          detail::batch_store(st, lo_all, hi_all, sm_all, tm_all, terms, key);
        });
      });
    } else {
      device.launch("cv_sweep_kblock", main_cfg,
                    [&, kb, first](const spmd::ThreadCtx& t) {
        const std::size_t j = t.global_idx();
        if (j >= n) {
          return;  // padding thread in the last block
        }
        // Load (or seed, on the first block) the carried window state into
        // thread-local storage, resume the sweep over this grid slice, and
        // store the state back for the next block.
        Scalar s_m[SweepPolynomial::kMaxPower + 1] = {};
        Scalar t_m[SweepPolynomial::kMaxPower + 1] = {};
        std::size_t lo = 0;
        std::size_t hi = 0;
        if (first) {
          detail::window_sweep_seed<Scalar>(ys, j, lo, hi,
                                            std::span<Scalar>(s_m, terms),
                                            std::span<Scalar>(t_m, terms));
        } else {
          lo = lo_all[j];
          hi = hi_all[j];
          for (std::size_t m = 0; m < terms; ++m) {
            s_m[m] = sm_all[j * terms + m];
            t_m[m] = tm_all[j * terms + m];
          }
        }
        detail::window_sweep_resume<Scalar>(
            xs, ys, hs, poly, j, lo, hi, std::span<Scalar>(s_m, terms),
            std::span<Scalar>(t_m, terms), [&](std::size_t b, Scalar sq) {
              resid_all[bandwidth_major ? b * n + j : j * kb + b] = sq;
            });
        lo_all[j] = lo;
        hi_all[j] = hi;
        for (std::size_t m = 0; m < terms; ++m) {
          sm_all[j * terms + m] = s_m[m];
          tm_all[j * terms + m] = t_m[m];
        }
      });
    }

    // Reduce the block to its kb per-bandwidth sums right away; only the
    // score totals and the running argmin survive the pass.
    for (std::size_t b = 0; b < kb; ++b) {
      Scalar total;
      if (bandwidth_major) {
        total = spmd::reduce_sum<Scalar>(device, resid_all.subview(b * n, n),
                                         tpb, config.reduce_variant);
      } else {
        total = strided_score_reduce<Scalar>(device, resid_all, n, kb, b,
                                             block_dim);
      }
      const double score =
          static_cast<double>(total) / static_cast<double>(n);
      cv[b0 + b] = score;
      if (score < best_score) {  // strict <: smallest index wins ties, the
        best_score = score;      // same order as the device argmin
        best_index = b0 + b;
      }
    }
  }

  SelectionResult result;
  result.bandwidth = grid[best_index];
  result.cv_score = cv[best_index];
  result.grid = grid.values();
  result.scores = std::move(cv);
  result.evaluations = k;
  result.method = std::move(method_name);
  return result;
}

/// The 2-D (n-block × k-block) tiled window sweep: nothing O(n) stays
/// resident. Observations tile into n-blocks; each block uploads only a
/// *slab* of the sorted arrays — the block plus a halo wide enough to cover
/// its largest admission window at h_max (bounds found host-side by binary
/// search; see halo_begin/halo_end in device_sweep.hpp) — and carries its
/// window state in O(n_block) buffers across the inner k-block loop.
/// Per-bandwidth score totals carry across n-blocks in the reduction's own
/// per-lane accumulators (see lane_reduce.hpp), so the streamed profile is
/// bitwise identical to the resident one for ANY (n_block, k_block).
/// Device memory: O(slab + n_block·k_block + k·lane_dim).
template <class Scalar>
SelectionResult run_streamed_2d_window_selection(
    spmd::Device& device, const SpmdSelectorConfig& config,
    const std::vector<Scalar>& host_x, const std::vector<Scalar>& host_y,
    const std::vector<Scalar>& host_grid, const BandwidthGrid& grid,
    const StreamingPlan& plan, std::size_t tpb, const SweepPolynomial& poly,
    std::string method_name) {
  const std::size_t n = host_x.size();
  const std::size_t k = host_grid.size();
  const std::size_t terms = poly.max_power + 1;
  const bool bandwidth_major = config.layout == ResidualLayout::kBandwidthMajor;
  const std::size_t lane_dim = spmd::detail::reduction_block_dim(device, tpb);
  const Scalar reach = host_grid.back();  // widest admission: h_max
  const std::span<const Scalar> host_xs(host_x);
  const std::span<const Scalar> host_ys(host_y);

  // Carried per-(bandwidth, lane) score accumulators. Uploaded as zeros —
  // phase 1 of the resident reduction starts every lane at zero too, so
  // accumulating each block's residuals in ascending global order
  // reproduces its exact left fold.
  spmd::DeviceBuffer<Scalar> d_lanes =
      device.alloc_global<Scalar>(k * lane_dim, "score-lanes");
  {
    const std::vector<Scalar> zeros(k * lane_dim, Scalar{});
    device.copy_to_device(d_lanes, std::span<const Scalar>(zeros));
  }
  spmd::MemView<Scalar> lanes = d_lanes.view();

  // Lane batching: the σ-sort key (admission-window length at h_max) is a
  // global property of the sorted array, so it is computed once and each
  // n-block's launch rows are permuted within their launch-block scopes.
  const std::size_t lane_width = resolve_lane_width(config.lane_width);
  AdmissionWindows win;
  if (lane_width > 1) {
    win = admission_windows<Scalar>(host_xs, reach);
  }

  for (std::size_t n0 = 0; n0 < n; n0 += plan.n_block) {
    const std::size_t nb = std::min(plan.n_block, n - n0);
    const std::size_t slab_begin = detail::halo_begin(host_xs, n0, reach);
    const std::size_t slab_end =
        detail::halo_end(host_xs, n0 + nb - 1, reach);
    const std::size_t slab = slab_end - slab_begin;

    // This block's slab of the sorted arrays plus its O(n_block) carry
    // state and residual block; all freed before the next block uploads.
    spmd::DeviceBuffer<Scalar> d_x =
        device.alloc_global<Scalar>(slab, "x-slab");
    spmd::DeviceBuffer<Scalar> d_y =
        device.alloc_global<Scalar>(slab, "y-slab");
    device.copy_to_device(d_x, host_xs.subspan(slab_begin, slab));
    device.copy_to_device(d_y, host_ys.subspan(slab_begin, slab));
    spmd::DeviceBuffer<std::size_t> d_lo =
        device.alloc_global<std::size_t>(nb, "window-lo");
    spmd::DeviceBuffer<std::size_t> d_hi =
        device.alloc_global<std::size_t>(nb, "window-hi");
    spmd::DeviceBuffer<Scalar> d_sm =
        device.alloc_global<Scalar>(nb * terms, "moment-s");
    spmd::DeviceBuffer<Scalar> d_tm =
        device.alloc_global<Scalar>(nb * terms, "moment-t");
    spmd::DeviceBuffer<Scalar> d_resid =
        device.alloc_global<Scalar>(nb * plan.k_block, "residual-block");

    std::span<const Scalar> xs = d_x.span();
    std::span<const Scalar> ys = d_y.span();
    spmd::MemView<std::size_t> lo_all = d_lo.view();
    spmd::MemView<std::size_t> hi_all = d_hi.view();
    spmd::MemView<Scalar> sm_all = d_sm.view();
    spmd::MemView<Scalar> tm_all = d_tm.view();
    spmd::MemView<Scalar> resid_all = d_resid.view();

    const spmd::LaunchConfig main_cfg = spmd::LaunchConfig::cover(nb, tpb);
    const std::size_t rel0 = n0 - slab_begin;  // block's first slab index

    std::vector<std::uint32_t> tile_order;
    if (lane_width > 1) {
      tile_order =
          sigma_batch_order(win.length, win.lo, n0, n0 + nb, tpb,
                            config.sigma, sigma_position_bucket(sizeof(Scalar)));
    }
    const std::span<const std::uint32_t> order_s(tile_order);

    for (std::size_t b0 = 0; b0 < k; b0 += plan.k_block) {
      const std::size_t kb = std::min(plan.k_block, k - b0);
      const std::vector<Scalar> host_block(host_grid.begin() + b0,
                                           host_grid.begin() + b0 + kb);
      spmd::ConstantBuffer<Scalar> c_block =
          device.upload_constant<Scalar>(host_block, "bandwidth-grid-block");
      spmd::MemView<const Scalar> hs = c_block.view();
      const bool first = b0 == 0;

      if (lane_width > 1) {
        // Batched fast path over slab-relative positions; carry and
        // residuals keyed by the observation's block-relative index, so
        // the σ permutation never changes what any cell holds.
        detail::with_lane_width(lane_width, [&](auto width_c) {
          constexpr std::size_t C = decltype(width_c)::value;
          device.launch_lanes("cv_sweep_tile", main_cfg, C,
                              [&, nb, kb, first, rel0](
                                  const spmd::LaneCtx& t) {
            detail::LaneBatch<Scalar, C> st;
            st.lanes = 0;
            for (std::size_t l = 0; l < t.lanes; ++l) {
              const std::size_t r = t.global_base() + l;
              if (r < nb) {
                st.pos[st.lanes++] = rel0 + order_s[r];
              }
            }
            if (st.lanes == 0) {
              return;
            }
            const auto key = [&st, rel0](std::size_t l) {
              return st.pos[l] - rel0;
            };
            if (first) {
              detail::batch_seed(st, xs, ys);
            } else {
              detail::batch_load(st, xs, ys, lo_all, hi_all, sm_all, tm_all,
                                 terms, key);
            }
            detail::batch_resume(
                st, xs, ys, hs, poly,
                [&](std::size_t b, std::size_t l, Scalar sq) {
                  const std::size_t q = st.pos[l] - rel0;
                  resid_all[bandwidth_major ? b * nb + q : q * kb + b] = sq;
                },
                config.prefetch_distance);
            detail::batch_store(st, lo_all, hi_all, sm_all, tm_all, terms,
                                key);
          });
        });
      } else {
        device.launch("cv_sweep_tile", main_cfg,
                      [&, nb, kb, first, rel0](const spmd::ThreadCtx& t) {
          const std::size_t r = t.global_idx();
          if (r >= nb) {
            return;
          }
          // Positions are slab-relative: the halo guarantees no admission
          // ever reaches a slab edge the resident sweep would cross, so the
          // slab-relative guards decide exactly as the absolute ones.
          const std::size_t pos = rel0 + r;
          Scalar s_m[SweepPolynomial::kMaxPower + 1] = {};
          Scalar t_m[SweepPolynomial::kMaxPower + 1] = {};
          std::size_t lo = 0;
          std::size_t hi = 0;
          if (first) {
            detail::window_sweep_seed<Scalar>(ys, pos, lo, hi,
                                              std::span<Scalar>(s_m, terms),
                                              std::span<Scalar>(t_m, terms));
          } else {
            lo = lo_all[r];
            hi = hi_all[r];
            for (std::size_t m = 0; m < terms; ++m) {
              s_m[m] = sm_all[r * terms + m];
              t_m[m] = tm_all[r * terms + m];
            }
          }
          detail::window_sweep_resume<Scalar>(
              xs, ys, hs, poly, pos, lo, hi, std::span<Scalar>(s_m, terms),
              std::span<Scalar>(t_m, terms), [&](std::size_t b, Scalar sq) {
                resid_all[bandwidth_major ? b * nb + r : r * kb + b] = sq;
              });
          lo_all[r] = lo;
          hi_all[r] = hi;
          for (std::size_t m = 0; m < terms; ++m) {
            sm_all[r * terms + m] = s_m[m];
            tm_all[r * terms + m] = t_m[m];
          }
        });
      }

      // Lane accumulation: thread `lane` folds this block's residuals for
      // global rows ≡ lane (mod lane_dim) — ascending, element by element,
      // straight into the carried accumulator — phase 1 of the resident
      // reduction continued across blocks.
      device.launch("score_lane_accum", spmd::LaunchConfig{1, lane_dim},
                    [&, nb, kb, n0, b0](const spmd::ThreadCtx& t) {
        const std::size_t lane = t.global_idx();
        const std::size_t start = detail::first_lane_row(n0, lane, lane_dim);
        for (std::size_t b = 0; b < kb; ++b) {
          for (std::size_t r = start; r < nb; r += lane_dim) {
            lanes[(b0 + b) * lane_dim + lane] +=
                resid_all[bandwidth_major ? b * nb + r : r * kb + b];
          }
        }
      });
    }
  }

  // Phase-2 replay: one tree reduction per bandwidth over its carried
  // lanes. The resident observation-major path reduces through the
  // hardcoded-sequential strided kernel, so only bandwidth-major honours
  // the configured variant.
  const spmd::ReduceVariant variant = bandwidth_major
                                          ? config.reduce_variant
                                          : spmd::ReduceVariant::kSequential;
  std::vector<double> cv(k);
  std::size_t best_index = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t b = 0; b < k; ++b) {
    const Scalar total = detail::lane_tree_reduce<Scalar>(
        device, lanes, b * lane_dim, lane_dim, variant);
    const double score = static_cast<double>(total) / static_cast<double>(n);
    cv[b] = score;
    if (score < best_score) {  // strict <: smallest index wins ties
      best_score = score;
      best_index = b;
    }
  }

  SelectionResult result;
  result.bandwidth = grid[best_index];
  result.cv_score = cv[best_index];
  result.grid = grid.values();
  result.scores = std::move(cv);
  result.evaluations = k;
  result.method = std::move(method_name);
  return result;
}

template <class Scalar>
SelectionResult run_device_selection(spmd::Device& device,
                                     const SpmdSelectorConfig& config,
                                     const data::Dataset& data,
                                     const BandwidthGrid& grid,
                                     std::string method_name) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  // The paper used the device maximum (512); clamp the request the same way
  // so one selector config runs on any device.
  const std::size_t tpb = std::min(config.threads_per_block,
                                   device.properties().max_threads_per_block);
  const SweepPolynomial poly = sweep_polynomial(config.kernel);

  const bool window = config.algorithm == SweepAlgorithm::kWindow;

  // --- Host-side staging -------------------------------------------------
  // The window sweep sorts (X, Y) once, on the host, before upload — the
  // device threads then index into the globally sorted arrays instead of
  // filling and quicksorting private rows. (The CV criterion sums over all
  // observations, so visiting them in sorted order changes nothing.)
  std::vector<Scalar> host_x(n);
  std::vector<Scalar> host_y(n);
  if (window) {
    SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
    host_x = std::move(sorted.x);
    host_y = std::move(sorted.y);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      host_x[i] = static_cast<Scalar>(data.x[i]);
      host_y[i] = static_cast<Scalar>(data.y[i]);
    }
  }
  std::vector<Scalar> host_grid(k);
  for (std::size_t b = 0; b < k; ++b) {
    host_grid[b] = static_cast<Scalar>(grid[b]);
  }

  // --- Streaming decision (window algorithm only) -------------------------
  // Resolve the 2-D (n-block × k-block) plan against this problem's byte
  // model and the device's global-memory budget. The default plan keeps
  // small problems resident — bit-for-bit the pre-streaming code path —
  // switches to n-resident k-blocks when only the n×k residual matrix is
  // over budget, and tiles the observations too (halo slab + lane-carried
  // scores) once even the O(n) carry state would not fit.
  if (window) {
    const std::size_t elem = sizeof(Scalar);
    const std::size_t terms = poly.max_power + 1;
    const std::size_t lane_dim = spmd::detail::reduction_block_dim(device, tpb);
    const Scalar reach = host_grid.back();
    const std::span<const Scalar> xs_host(host_x);
    const auto tile_bytes = [&, n, k](std::size_t nb,
                                      std::size_t kb) -> std::size_t {
      if (nb >= n) {
        // n-resident: the 1-D streamed path's model (no slab, no lanes).
        return SpmdGridSelector::estimated_streamed_bytes(
            n, kb, config.precision, config.kernel);
      }
      const std::size_t slab = detail::max_halo_span(xs_host, 0, n, nb, reach);
      return 2 * slab * elem +
             nb * (2 * terms * elem + 2 * sizeof(std::size_t)) +
             nb * kb * elem + k * lane_dim * elem;
    };
    const StreamingPlan plan = resolve_streaming_2d(
        config.stream, n, k,
        SpmdGridSelector::estimated_bytes(n, k, config.precision,
                                          config.streaming, config.algorithm),
        tile_bytes, device.properties().memory_budget().global_bytes);
    if (plan.n_streamed) {
      return run_streamed_2d_window_selection<Scalar>(
          device, config, host_x, host_y, host_grid, grid, plan, tpb, poly,
          std::move(method_name));
    }
    if (plan.streamed) {
      return run_streamed_window_selection<Scalar>(
          device, config, host_x, host_y, host_grid, grid, plan, tpb, poly,
          std::move(method_name));
    }
  }

  // --- Device memory plan (paper §IV-A) -----------------------------------
  // Bandwidths live in constant memory; the 8 KB working set caps k.
  spmd::ConstantBuffer<Scalar> c_grid =
      device.upload_constant<Scalar>(host_grid, "bandwidth-grid");

  spmd::DeviceBuffer<Scalar> d_x = device.alloc_global<Scalar>(n, "x");
  spmd::DeviceBuffer<Scalar> d_y = device.alloc_global<Scalar>(n, "y");
  device.copy_to_device(d_x, std::span<const Scalar>(host_x));
  device.copy_to_device(d_y, std::span<const Scalar>(host_y));

  // Two n×n matrices for the per-thread sorted rows (skipped in streaming
  // mode, the paper's future-work extension, and by the window sweep, which
  // has no private rows at all).
  spmd::DeviceBuffer<Scalar> d_dist;
  spmd::DeviceBuffer<Scalar> d_ymat;
  if (!window && !config.streaming) {
    d_dist = device.alloc_global<Scalar>(n * n, "dist-rows");
    d_ymat = device.alloc_global<Scalar>(n * n, "y-rows");
  }

  // Two n×k matrices of bandwidth-specific sums (per-row-sort path only —
  // the window sweep recombines its moments in place), and the n×k squared
  // residual matrix feeding the reductions.
  spmd::DeviceBuffer<Scalar> d_sum_y;
  spmd::DeviceBuffer<Scalar> d_sum_w;
  if (!window) {
    d_sum_y = device.alloc_global<Scalar>(n * k, "sum-y");
    d_sum_w = device.alloc_global<Scalar>(n * k, "sum-w");
  }
  spmd::DeviceBuffer<Scalar> d_resid =
      device.alloc_global<Scalar>(n * k, "residuals");
  spmd::DeviceBuffer<Scalar> d_scores =
      device.alloc_global<Scalar>(k, "cv-scores");

  // X/Y and the row matrices stay raw spans: the per-thread quicksort needs
  // raw element references. The grid, sums, residuals, and scores go
  // through checked views so a sanitizer-enabled device instruments them.
  std::span<const Scalar> xs = d_x.span();
  std::span<const Scalar> ys = d_y.span();
  spmd::MemView<const Scalar> hs = c_grid.view();
  std::span<Scalar> dist_all = d_dist.span();
  std::span<Scalar> ymat_all = d_ymat.span();
  spmd::MemView<Scalar> sum_y_all = d_sum_y.view();
  spmd::MemView<Scalar> sum_w_all = d_sum_w.view();
  spmd::MemView<Scalar> resid_all = d_resid.view();
  const bool bandwidth_major = config.layout == ResidualLayout::kBandwidthMajor;
  const bool streaming = config.streaming;

  // --- Main kernel (paper §IV-B) ------------------------------------------
  // One thread per observation; no shared memory or cross-thread
  // coordination, so an independent launch.
  const spmd::LaunchConfig main_cfg =
      spmd::LaunchConfig::cover(n, tpb);
  const std::size_t lane_width =
      window ? resolve_lane_width(config.lane_width) : 1;
  if (window && lane_width > 1) {
    // Batched fast path (the default): each dispatch sweeps C σ-sorted
    // observations in lockstep SoA lanes. Residuals stay keyed by
    // observation, so the matrix — and every reduction after it — is
    // bitwise identical to the scalar kernel's.
    const std::vector<std::uint32_t> order = sigma_launch_order<Scalar>(
        std::span<const Scalar>(host_x), host_grid.back(), 0, n, tpb,
        config.sigma);
    const std::span<const std::uint32_t> order_s(order);
    detail::with_lane_width(lane_width, [&](auto width_c) {
      constexpr std::size_t C = decltype(width_c)::value;
      device.launch_lanes("cv_sweep", main_cfg, C,
                          [&, n, k](const spmd::LaneCtx& t) {
        detail::LaneBatch<Scalar, C> st;
        st.lanes = 0;
        for (std::size_t l = 0; l < t.lanes; ++l) {
          const std::size_t j = t.global_base() + l;
          if (j < n) {
            st.pos[st.lanes++] = order_s[j];
          }
        }
        if (st.lanes == 0) {
          return;  // all-padding dispatch in the last block
        }
        detail::batch_seed(st, xs, ys);
        detail::batch_resume(st, xs, ys, hs, poly,
                             [&](std::size_t b, std::size_t l, Scalar sq) {
          const std::size_t j = st.pos[l];
          resid_all[bandwidth_major ? b * n + j : j * k + b] = sq;
        }, config.prefetch_distance);
      });
    });
  } else {
    device.launch("cv_sweep", main_cfg, [&, n, k](const spmd::ThreadCtx& t) {
      const std::size_t j = t.global_idx();
      if (j >= n) {
        return;  // padding thread in the last block
      }

      if (window) {
        // Window sweep: index into the device-global sorted X/Y, growing the
        // two-pointer window across the ascending grid. No private rows, no
        // per-thread sort; residuals land in the configured layout.
        detail::window_sweep_thread<Scalar>(
            xs, ys, hs, poly, j, [&](std::size_t b, Scalar sq) {
              resid_all[bandwidth_major ? b * n + j : j * k + b] = sq;
            });
        return;
      }

      // Thread j's rows of the distance and Y matrices. In streaming mode the
      // rows live in thread-local scratch ("local memory") instead of the
      // global-memory matrices.
      std::vector<Scalar> local_dist;
      std::vector<Scalar> local_y;
      std::span<Scalar> dist;
      std::span<Scalar> yrow;
      if (streaming) {
        local_dist.resize(n);
        local_y.resize(n);
        dist = local_dist;
        yrow = local_y;
      } else {
        dist = dist_all.subspan(j * n, n);
        yrow = ymat_all.subspan(j * n, n);
      }

      // Fill + sort + sweep + residual loop (shared kernel body); residuals
      // land with the indices switched to bandwidth-major when configured —
      // "to facilitate efficient caching… the array is indexed as k separate
      // groups of n".
      detail::sweep_thread<Scalar>(
          xs, ys, hs, poly, j, dist, yrow, sum_y_all.subview(j * k, k),
          sum_w_all.subview(j * k, k), [&](std::size_t b, Scalar sq) {
            resid_all[bandwidth_major ? b * n + j : j * k + b] = sq;
          });
    });
  }

  // --- Reductions (paper §IV-B) --------------------------------------------
  // One single-block sum reduction per bandwidth. Bandwidth-major layout
  // reads a contiguous run; observation-major reads with stride k.
  spmd::MemView<Scalar> scores = d_scores.view();
  const std::size_t block_dim = spmd::detail::reduction_block_dim(
      device, tpb);
  for (std::size_t b = 0; b < k; ++b) {
    if (bandwidth_major) {
      scores[b] = spmd::reduce_sum<Scalar>(
          device, resid_all.subview(b * n, n), tpb,
          config.reduce_variant);
    } else {
      // Strided single-block reduction over resid[j*k + b].
      scores[b] =
          strided_score_reduce<Scalar>(device, resid_all, n, k, b, block_dim);
    }
  }

  // Argmin reduction over the k scores (2T shared elements: values +
  // payload, per the paper; index payload per its footnote 2).
  const spmd::ArgminResult<Scalar> best = spmd::reduce_argmin<Scalar>(
      device, spmd::MemView<const Scalar>(scores), tpb);

  // --- Assemble the result --------------------------------------------------
  std::vector<Scalar> host_scores(k);
  device.copy_to_host(std::span<Scalar>(host_scores), d_scores);
  std::vector<double> cv(k);
  for (std::size_t b = 0; b < k; ++b) {
    // Normalize the paper's raw sums to CV_lc's n⁻¹ scale.
    cv[b] = static_cast<double>(host_scores[b]) / static_cast<double>(n);
  }

  SelectionResult result;
  result.bandwidth = grid[best.index];
  result.cv_score = cv[best.index];
  result.grid = grid.values();
  result.scores = std::move(cv);
  result.evaluations = k;
  result.method = std::move(method_name);
  return result;
}

}  // namespace

SelectionResult SpmdGridSelector::select(const data::Dataset& data,
                                         const BandwidthGrid& grid) const {
  data.validate();
  if (data.empty()) {
    throw std::invalid_argument("SpmdGridSelector: empty dataset");
  }
  if (!is_sweepable(config_.kernel)) {
    throw std::invalid_argument(
        "SpmdGridSelector: kernel '" +
        std::string(to_string(config_.kernel)) +
        "' is not supported by the device sweep");
  }
  return config_.precision == Precision::kFloat
             ? run_device_selection<float>(device_, config_, data, grid,
                                           name())
             : run_device_selection<double>(device_, config_, data, grid,
                                            name());
}

std::string SpmdGridSelector::name() const {
  std::string n = "spmd-grid(";
  n += to_string(config_.kernel);
  n += ",";
  n += to_string(config_.precision);
  n += ",tpb=" + std::to_string(config_.threads_per_block);
  n += ",";
  n += to_string(config_.layout);
  if (config_.streaming) {
    n += ",streaming";
  }
  if (config_.algorithm == SweepAlgorithm::kWindow) {
    n += ",window";
  }
  if (config_.stream.k_block != 0) {
    n += ",kblock=" + std::to_string(config_.stream.k_block);
  }
  if (config_.stream.n_block != 0) {
    n += ",nblock=" + std::to_string(config_.stream.n_block);
  }
  if (config_.stream.memory_budget_bytes != 0) {
    n += ",budget=" + std::to_string(config_.stream.memory_budget_bytes);
  }
  if (config_.algorithm == SweepAlgorithm::kWindow) {
    const std::size_t lanes = resolve_lane_width(config_.lane_width);
    if (lanes > 1) {
      n += ",lanes=" + std::to_string(lanes);
      if (config_.sigma != SigmaPolicy::kNone) {
        n += ",sigma=" + std::string(to_string(config_.sigma));
      }
      if (config_.prefetch_distance != 0) {
        n += ",prefetch=" + std::to_string(config_.prefetch_distance);
      }
    }
  }
  n += ")";
  return n;
}

}  // namespace kreg
