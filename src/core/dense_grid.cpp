#include "core/dense_grid.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/parallel_for.hpp"

namespace kreg {

namespace {

/// Index of the first grid value >= d (grid ascending). For compact
/// kernels, bandwidths below d give zero weight and are skipped wholesale.
std::size_t first_covering_bandwidth(const std::vector<double>& grid,
                                     double d) {
  return std::lower_bound(grid.begin(), grid.end(), d) - grid.begin();
}

}  // namespace

SelectionResult DenseGridSelector::select(const data::Dataset& data,
                                          const BandwidthGrid& grid) const {
  data.validate();
  if (data.empty()) {
    throw std::invalid_argument("DenseGridSelector: empty dataset");
  }
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const std::vector<double>& hs = grid.values();
  const bool compact = is_compact(kernel_);

  // Per-observation, per-bandwidth numerator and denominator tables.
  std::vector<double> num(n * k, 0.0);
  std::vector<double> den(n * k, 0.0);

  if (!parallel_) {
    // Symmetric pair pass: each unordered pair visited once.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t l = i + 1; l < n; ++l) {
        const double d = std::abs(data.x[i] - data.x[l]);
        const std::size_t b0 =
            compact ? first_covering_bandwidth(hs, d) : std::size_t{0};
        for (std::size_t b = b0; b < k; ++b) {
          const double w = kernel_value(kernel_, d / hs[b]);
          if (w == 0.0) {
            continue;
          }
          num[i * k + b] += data.y[l] * w;
          den[i * k + b] += w;
          num[l * k + b] += data.y[i] * w;
          den[l * k + b] += w;
        }
      }
    }
  } else {
    // Parallel pass: each worker owns a slice of i rows and scans all l,
    // trading the 2x symmetry saving for core parallelism (no write races).
    parallel::parallel_for(
        n,
        [&](std::size_t i) {
          for (std::size_t l = 0; l < n; ++l) {
            if (l == i) {
              continue;
            }
            const double d = std::abs(data.x[i] - data.x[l]);
            const std::size_t b0 =
                compact ? first_covering_bandwidth(hs, d) : std::size_t{0};
            for (std::size_t b = b0; b < k; ++b) {
              const double w = kernel_value(kernel_, d / hs[b]);
              if (w == 0.0) {
                continue;
              }
              num[i * k + b] += data.y[l] * w;
              den[i * k + b] += w;
            }
          }
        },
        pool_);
  }

  // Assemble CV scores with the M(X_i) guard.
  std::vector<double> scores(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t b = 0; b < k; ++b) {
      const double denominator = den[i * k + b];
      if (denominator > 0.0) {
        const double e = data.y[i] - num[i * k + b] / denominator;
        scores[b] += e * e;
      }
    }
  }
  for (double& s : scores) {
    s /= static_cast<double>(n);
  }
  return selection_from_profile(grid, std::move(scores), name());
}

std::string DenseGridSelector::name() const {
  return std::string("dense-grid(") + std::string(to_string(kernel_)) +
         (parallel_ ? ",parallel" : "") + ")";
}

}  // namespace kreg
