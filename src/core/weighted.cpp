#include "core/weighted.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/selectors.hpp"
#include "core/validate_grid.hpp"
#include "sort/iterative_quicksort.hpp"

namespace kreg {

namespace {

void check_weights(const data::Dataset& data,
                   std::span<const double> weights) {
  if (weights.size() != data.size()) {
    throw std::invalid_argument("weighted: weights.size() != data.size()");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "weighted: weights must be finite and non-negative");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("weighted: total weight must be positive");
  }
}

void check_bandwidth(double h) {
  if (!(h > 0.0)) {
    throw std::invalid_argument("weighted: bandwidth must be positive");
  }
}

}  // namespace

double weighted_nw_evaluate(const data::Dataset& data,
                            std::span<const double> weights, double x,
                            double h, KernelType kernel) {
  data.validate();
  check_weights(data, weights);
  check_bandwidth(h);
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t l = 0; l < data.size(); ++l) {
    const double w =
        weights[l] * kernel_value(kernel, (x - data.x[l]) / h);
    numerator += data.y[l] * w;
    denominator += w;
  }
  if (denominator == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return numerator / denominator;
}

LooPrediction weighted_loo_predict(const data::Dataset& data,
                                   std::span<const double> weights,
                                   std::size_t i, double h,
                                   KernelType kernel) {
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t l = 0; l < data.size(); ++l) {
    if (l == i) {
      continue;
    }
    const double w =
        weights[l] * kernel_value(kernel, (data.x[i] - data.x[l]) / h);
    numerator += data.y[l] * w;
    denominator += w;
  }
  LooPrediction out;
  if (denominator > 0.0) {
    out.value = numerator / denominator;
    out.valid = true;
  }
  return out;
}

double weighted_cv_score(const data::Dataset& data,
                         std::span<const double> weights, double h,
                         KernelType kernel) {
  data.validate();
  check_weights(data, weights);
  check_bandwidth(h);
  double acc = 0.0;
  double weight_total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    weight_total += weights[i];
    if (weights[i] == 0.0) {
      continue;
    }
    const LooPrediction p = weighted_loo_predict(data, weights, i, h, kernel);
    if (p.valid) {
      const double e = data.y[i] - p.value;
      acc += weights[i] * e * e;
    }
  }
  return acc / weight_total;
}

std::vector<double> weighted_sweep_cv_profile(const data::Dataset& data,
                                              std::span<const double> weights,
                                              std::span<const double> grid,
                                              KernelType kernel) {
  data.validate();
  check_weights(data, weights);
  validate_bandwidth_grid(grid, "weighted sweep");
  const SweepPolynomial poly = sweep_polynomial(kernel);  // throws if not sweepable
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const std::size_t terms = poly.max_power + 1;

  double weight_total = 0.0;
  for (double w : weights) {
    weight_total += w;
  }

  std::vector<double> totals(k, 0.0);
  // Row scratch: distances plus a (w, w·y) payload pair per entry.
  std::vector<double> dist(n);
  struct Payload {
    double w;
    double wy;
  };
  std::vector<Payload> payload(n);

  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] == 0.0) {
      continue;  // zero-weight observations contribute nothing to CV_w
    }
    for (std::size_t l = 0; l < n; ++l) {
      dist[l] = std::abs(data.x[i] - data.x[l]);
      payload[l] = {weights[l], weights[l] * data.y[l]};
    }
    sort::iterative_quicksort_kv(std::span<double>(dist),
                                 std::span<Payload>(payload));

    double s_m[SweepPolynomial::kMaxPower + 1] = {};
    double t_m[SweepPolynomial::kMaxPower + 1] = {};
    std::size_t p = 0;
    const double yi = data.y[i];
    const double wi = weights[i];
    for (std::size_t b = 0; b < k; ++b) {
      const double h = grid[b];
      while (p < n && dist[p] <= h) {
        double pw = 1.0;
        for (std::size_t m = 0; m < terms; ++m) {
          s_m[m] += payload[p].w * pw;
          t_m[m] += payload[p].wy * pw;
          pw *= dist[p];
        }
        ++p;
      }
      double num = 0.0;
      double den = 0.0;
      const double inv_h = 1.0 / h;
      double inv_pow = 1.0;
      for (std::size_t m = 0; m < terms; ++m) {
        const double c = poly.coeff[m];
        if (c != 0.0) {
          // Self term (distance 0): w_i at power 0 in S, w_i·y_i in T.
          const double s_excl = m == 0 ? s_m[m] - wi : s_m[m];
          const double t_excl = m == 0 ? t_m[m] - wi * yi : t_m[m];
          num += c * t_excl * inv_pow;
          den += c * s_excl * inv_pow;
        }
        inv_pow *= inv_h;
      }
      if (den > 0.0) {
        const double e = yi - num / den;
        totals[b] += wi * e * e;
      }
    }
  }
  for (double& t : totals) {
    t /= weight_total;
  }
  return totals;
}

SelectionResult weighted_select(const data::Dataset& data,
                                std::span<const double> weights,
                                const BandwidthGrid& grid,
                                KernelType kernel) {
  std::vector<double> scores =
      weighted_sweep_cv_profile(data, weights, grid.values(), kernel);
  return selection_from_profile(
      grid, std::move(scores),
      "weighted-sorted-grid(" + std::string(to_string(kernel)) + ")");
}

}  // namespace kreg
