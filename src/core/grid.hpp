#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"

namespace kreg {

/// The number of candidate bandwidths the paper's device can hold: 8 KB of
/// constant-cache working set / 4 bytes per single-precision value (§IV-A).
inline constexpr std::size_t kDeviceMaxBandwidths = 2048;

/// An evenly spaced, strictly increasing grid of candidate bandwidths.
///
/// Paper defaults (§IV): the maximum bandwidth is the domain of X (max −
/// min) and the minimum is that domain divided by the number of candidates,
/// so the grid is { domain·1/k, domain·2/k, …, domain }. Invariants: k ≥ 1,
/// 0 < min ≤ max, values strictly ascending (duplicates are rejected at
/// construction — the incremental sweeps rely on it). Grids destined for
/// the SPMD device must
/// additionally satisfy k ≤ kDeviceMaxBandwidths (checked at upload, and by
/// `fits_device()` here).
class BandwidthGrid {
 public:
  /// Explicit range: k values evenly spaced on [min_h, max_h], endpoints
  /// included (k == 1 yields {max_h}). Throws std::invalid_argument on
  /// k == 0, non-positive min_h, min_h > max_h, or a range too narrow for k
  /// strictly ascending values.
  BandwidthGrid(double min_h, double max_h, std::size_t k);

  /// Paper default for a dataset: max = domain of X, min = domain / k.
  /// Throws std::invalid_argument when the X domain is degenerate (zero
  /// width) or the dataset is empty.
  static BandwidthGrid default_for(const data::Dataset& dataset,
                                   std::size_t k);

  /// Wraps an explicit candidate list — the entry point for submittable
  /// plan objects (core/job.hpp) and for merged multi-tenant grids, which
  /// are strictly ascending but not evenly spaced. Values are taken
  /// verbatim (no respacing), so profiles computed through the wrapped
  /// grid are bitwise comparable with profiles computed from the raw
  /// span. Throws std::invalid_argument when `values` is empty, contains
  /// a non-positive entry, or is not strictly ascending.
  static BandwidthGrid from_values(std::vector<double> values);

  const std::vector<double>& values() const noexcept { return values_; }
  std::size_t size() const noexcept { return values_.size(); }
  double min() const noexcept { return values_.front(); }
  double max() const noexcept { return values_.back(); }
  double operator[](std::size_t i) const noexcept { return values_[i]; }

  /// True when the grid fits the device's constant-memory cap.
  bool fits_device() const noexcept {
    return values_.size() <= kDeviceMaxBandwidths;
  }

  /// A sub-grid of k values spanning [lo, hi] — the paper's refinement
  /// step: "run the optimization code multiple times with progressively
  /// smaller ranges of possible bandwidths".
  BandwidthGrid zoomed(double lo, double hi, std::size_t k) const;

 private:
  BandwidthGrid() = default;  // from_values fills values_ directly

  std::vector<double> values_;
};

}  // namespace kreg
