#pragma once

#include <cstddef>
#include <vector>

#include "core/grid.hpp"
#include "core/kernels.hpp"
#include "core/types.hpp"
#include "data/dataset.hpp"

namespace kreg {

/// Linear binning and binned kernel regression (Fan & Marron 1994, "Fast
/// implementations of nonparametric curve estimators").
///
/// The literature's *other* classic answer to the cost problem the paper
/// attacks with sorting and a GPU: replace the n observations by G ≪ n
/// weighted pseudo-observations on an equispaced grid, after which every
/// kernel sum costs O(G·support/step) instead of O(n). Included both as a
/// baseline to benchmark the exact selectors against (accuracy-for-speed
/// trade-off, `bench_binned`) and as a practical tool for n far beyond
/// 20,000.
///
/// Linear binning assigns each observation's unit mass to its two
/// neighbouring grid points in proportion to proximity, which preserves
/// the sample's total mass and first moment exactly.
struct BinnedSample {
  double lo = 0.0;    ///< first grid point
  double step = 0.0;  ///< grid spacing
  std::vector<double> mass;     ///< Σ of binned observation masses per node
  std::vector<double> y_mass;   ///< Σ of binned Y·mass per node
  std::vector<double> y2_mass;  ///< Σ of binned Y²·mass (within-bin noise)
  std::size_t n = 0;            ///< original sample size

  std::size_t bins() const noexcept { return mass.size(); }
  double node(std::size_t j) const noexcept {
    return lo + step * static_cast<double>(j);
  }
  /// Bin-mean response s_j / c_j (0 where the bin is empty).
  double bin_mean(std::size_t j) const noexcept {
    return mass[j] > 0.0 ? y_mass[j] / mass[j] : 0.0;
  }
};

/// Bins a dataset onto `bins` equispaced nodes spanning [min(X), max(X)].
/// Requires bins >= 2 and a non-degenerate X domain.
BinnedSample linear_bin(const data::Dataset& data, std::size_t bins);

/// Nadaraya–Watson estimate evaluated from binned data:
/// ĝ(x) ≈ Σ_j y_mass[j] K((x − g_j)/h) / Σ_j mass[j] K((x − g_j)/h).
/// NaN where the binned support is empty.
double binned_nw_evaluate(const BinnedSample& binned, double x, double h,
                          KernelType kernel = KernelType::kEpanechnikov);

/// Approximate CV profile from binned data. Every observation binned to
/// node j shares the node's leave-own-bin-out prediction ĝ₋j(g_j), so
///
///   Σ_{i∈j} (y_i − ĝ₋j)² = Σ y_i² − 2 ĝ₋j Σ y_i + c_j ĝ₋j²
///                        = y2_mass[j] − 2 ĝ₋j y_mass[j] + mass[j] ĝ₋j²,
///
/// which keeps the within-bin noise the bin means would otherwise average
/// away — the CV *level* approximates the exact criterion, not just the
/// argmin. O(G²) per bandwidth, independent of n after the O(n) binning.
std::vector<double> binned_cv_profile(
    const BinnedSample& binned, std::span<const double> grid,
    KernelType kernel = KernelType::kEpanechnikov);

/// Grid selection on the binned approximation. `bins` trades accuracy for
/// speed; a few hundred nodes typically land within one grid cell of the
/// exact selector's choice (see binned_test and bench_binned).
SelectionResult binned_select(const data::Dataset& data,
                              const BandwidthGrid& grid, std::size_t bins,
                              KernelType kernel = KernelType::kEpanechnikov);

}  // namespace kreg
