#pragma once

#include <optional>

#include "core/confidence.hpp"
#include "core/nadaraya_watson.hpp"
#include "core/selectors.hpp"
#include "core/spmd_selector.hpp"

namespace kreg {

/// One-call facade in the spirit of R's `npreg(y ~ x)` — the usage the
/// paper targets for applied researchers. Picks the bandwidth by LOO-CV
/// grid search (paper-default grid), fits the Nadaraya–Watson estimator,
/// and exposes curves and confidence bands.
struct AutoOptions {
  KernelType kernel = KernelType::kEpanechnikov;
  std::size_t grid_size = 200;
  /// Apply 3 zoom rounds after the grid search for extra resolution.
  bool refine = false;

  /// Execution backend.
  enum class Backend {
    /// Paper-informed heuristic: the sequential and parallel programs cross
    /// near n ≈ 1,000 (§V) for the per-row-sort sweep; the window sweep's
    /// far cheaper per-observation work pushes its crossover higher, so it
    /// stays sequential until n ≈ 4,000. A provided device takes precedence
    /// for large samples.
    kAuto,
    kSequential,  ///< Program 3 (or its window-sweep refinement)
    kParallel,    ///< host-parallel Program 3 / window sweep
    kDevice,      ///< Program 4 (requires `device`)
  };
  Backend backend = Backend::kAuto;
  spmd::Device* device = nullptr;

  /// Sweep algorithm for sweepable kernels, on every backend. kWindow
  /// (default): sort (X, Y) once globally, grow a two-pointer window per
  /// observation — O(n log n + n·(k + admitted)). kPerRowSort: the paper's
  /// §III per-observation sort, O(n² log n) — kept as the faithful
  /// ablation baseline.
  SweepAlgorithm algorithm = SweepAlgorithm::kWindow;

  /// Bandwidth-selection criterion. kLeastSquaresCv (default): the LOOCV
  /// grid search of the paper. kOscv: one-sided CV (core/oscv_sweep.hpp) —
  /// minimizes the one-sided criterion over the grid and fits at the
  /// rescaled ĥ = C·b̂; requires a sweepable kernel and a host backend, and
  /// is incompatible with `refine` (the zoom rounds assume the reported
  /// bandwidth is a grid point of the searched profile, which the
  /// rescaling breaks).
  enum class Criterion {
    kLeastSquaresCv,
    kOscv,
  };
  Criterion criterion = Criterion::kLeastSquaresCv;
};

/// A fitted kernel regression: the selection diagnostics plus the
/// estimator, ready to evaluate.
class FittedRegression {
 public:
  FittedRegression(data::Dataset data, SelectionResult selection,
                   KernelType kernel);

  /// ĝ(x) at the selected bandwidth.
  double operator()(double x) const { return fit_(x); }

  const SelectionResult& selection() const noexcept { return selection_; }
  double bandwidth() const noexcept { return selection_.bandwidth; }
  const NadarayaWatson& estimator() const noexcept { return fit_; }

  /// Fitted curve over `points` evenly spaced x values.
  NadarayaWatson::Curve curve(std::size_t points = 100) const {
    return fit_.curve(points);
  }

  /// Pointwise LOO-residual confidence band at the selected bandwidth.
  ConfidenceBand confidence_band(std::size_t points = 100,
                                 double level = 0.95) const;

 private:
  data::Dataset data_;
  SelectionResult selection_;
  NadarayaWatson fit_;
};

/// Selects, fits, returns. Throws on invalid data, a non-sweepable kernel
/// with a device backend, or Backend::kDevice without a device.
FittedRegression auto_regress(const data::Dataset& data,
                              const AutoOptions& options = {});

}  // namespace kreg
