#include "core/multi_device_selector.hpp"

#include <stdexcept>
#include <utility>

#include "core/detail/device_sweep.hpp"
#include "parallel/blocked_range.hpp"
#include "spmd/reduce.hpp"

namespace kreg {

MultiDeviceGridSelector::MultiDeviceGridSelector(
    std::vector<spmd::Device*> devices, SpmdSelectorConfig config)
    : devices_(std::move(devices)), config_(config) {
  if (devices_.empty()) {
    throw std::invalid_argument("MultiDeviceGridSelector: no devices");
  }
  for (const spmd::Device* device : devices_) {
    if (device == nullptr) {
      throw std::invalid_argument("MultiDeviceGridSelector: null device");
    }
  }
}

std::size_t MultiDeviceGridSelector::estimated_bytes_per_device(
    std::size_t n, std::size_t k, std::size_t devices, Precision precision,
    bool streaming) {
  if (devices == 0) {
    throw std::invalid_argument("estimated_bytes_per_device: devices == 0");
  }
  const std::size_t elem =
      precision == Precision::kFloat ? sizeof(float) : sizeof(double);
  const std::size_t slice = (n + devices - 1) / devices;  // worst slice
  // Full x + y replicated, plus slice-sized matrices and per-device scores.
  std::size_t elems = 2 * n + k + 3 * slice * k;
  if (!streaming) {
    elems += 2 * slice * n;
  }
  return elems * elem;
}

namespace {

template <class Scalar>
SelectionResult run_multi_device(const std::vector<spmd::Device*>& devices,
                                 const SpmdSelectorConfig& config,
                                 const data::Dataset& data,
                                 const BandwidthGrid& grid,
                                 std::string method_name) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const SweepPolynomial poly = sweep_polynomial(config.kernel);
  const bool streaming = config.streaming;

  std::vector<Scalar> host_x(n);
  std::vector<Scalar> host_y(n);
  for (std::size_t i = 0; i < n; ++i) {
    host_x[i] = static_cast<Scalar>(data.x[i]);
    host_y[i] = static_cast<Scalar>(data.y[i]);
  }
  std::vector<Scalar> host_grid(k);
  for (std::size_t b = 0; b < k; ++b) {
    host_grid[b] = static_cast<Scalar>(grid[b]);
  }

  const std::vector<parallel::BlockedRange> slices =
      parallel::partition_evenly(n, devices.size());

  // Combined per-bandwidth sums of squared residuals across devices.
  std::vector<double> combined(k, 0.0);

  for (std::size_t d = 0; d < slices.size(); ++d) {
    spmd::Device& device = *devices[d];
    const parallel::BlockedRange slice = slices[d];
    const std::size_t rows = slice.size();
    const std::size_t tpb = std::min(
        config.threads_per_block, device.properties().max_threads_per_block);

    // Device-side data: the full X/Y (distances need every observation),
    // the grid in constant memory, and slice-sized working matrices.
    spmd::ConstantBuffer<Scalar> c_grid =
        device.upload_constant<Scalar>(host_grid, "bandwidth-grid");
    spmd::DeviceBuffer<Scalar> d_x = device.alloc_global<Scalar>(n, "x");
    spmd::DeviceBuffer<Scalar> d_y = device.alloc_global<Scalar>(n, "y");
    device.copy_to_device(d_x, std::span<const Scalar>(host_x));
    device.copy_to_device(d_y, std::span<const Scalar>(host_y));

    spmd::DeviceBuffer<Scalar> d_dist;
    spmd::DeviceBuffer<Scalar> d_ymat;
    if (!streaming) {
      d_dist = device.alloc_global<Scalar>(rows * n, "dist-rows");
      d_ymat = device.alloc_global<Scalar>(rows * n, "y-rows");
    }
    spmd::DeviceBuffer<Scalar> d_sum_y =
        device.alloc_global<Scalar>(rows * k, "sum-y");
    spmd::DeviceBuffer<Scalar> d_sum_w =
        device.alloc_global<Scalar>(rows * k, "sum-w");
    spmd::DeviceBuffer<Scalar> d_resid =
        device.alloc_global<Scalar>(rows * k, "residuals");
    spmd::DeviceBuffer<Scalar> d_scores =
        device.alloc_global<Scalar>(k, "slice-scores");

    std::span<const Scalar> xs = d_x.span();
    std::span<const Scalar> ys = d_y.span();
    spmd::MemView<const Scalar> hs = c_grid.view();
    std::span<Scalar> dist_all = d_dist.span();
    std::span<Scalar> ymat_all = d_ymat.span();
    spmd::MemView<Scalar> sum_y_all = d_sum_y.view();
    spmd::MemView<Scalar> sum_w_all = d_sum_w.view();
    spmd::MemView<Scalar> resid_all = d_resid.view();

    // Main kernel over this device's slice; residuals are written
    // bandwidth-major within the slice (k groups of `rows`).
    const spmd::LaunchConfig cfg = spmd::LaunchConfig::cover(rows, tpb);
    const std::size_t base = slice.begin;
    device.launch("cv_sweep_slice", cfg,
                  [&, base, rows, n, k](const spmd::ThreadCtx& t) {
      const std::size_t r = t.global_idx();
      if (r >= rows) {
        return;
      }
      const std::size_t obs = base + r;
      std::vector<Scalar> local_dist;
      std::vector<Scalar> local_y;
      std::span<Scalar> dist;
      std::span<Scalar> yrow;
      if (streaming) {
        local_dist.resize(n);
        local_y.resize(n);
        dist = local_dist;
        yrow = local_y;
      } else {
        dist = dist_all.subspan(r * n, n);
        yrow = ymat_all.subspan(r * n, n);
      }
      detail::sweep_thread<Scalar>(
          xs, ys, hs, poly, obs, dist, yrow, sum_y_all.subview(r * k, k),
          sum_w_all.subview(r * k, k),
          [&](std::size_t b, Scalar sq) { resid_all[b * rows + r] = sq; });
    });

    // Per-bandwidth slice reductions on this device.
    spmd::MemView<Scalar> scores = d_scores.view();
    for (std::size_t b = 0; b < k; ++b) {
      scores[b] = spmd::reduce_sum<Scalar>(device,
                                           resid_all.subview(b * rows, rows),
                                           tpb, config.reduce_variant);
    }
    for (std::size_t b = 0; b < k; ++b) {
      combined[b] += static_cast<double>(scores[b]);
    }
  }

  // Final argmin on device 0, as the published program does with its single
  // GPU (host-combined partials are uploaded as the reduction input).
  std::vector<Scalar> combined_scalar(k);
  for (std::size_t b = 0; b < k; ++b) {
    combined_scalar[b] = static_cast<Scalar>(combined[b]);
  }
  spmd::Device& primary = *devices.front();
  spmd::DeviceBuffer<Scalar> d_combined =
      primary.alloc_global<Scalar>(k, "combined-scores");
  primary.copy_to_device(d_combined, std::span<const Scalar>(combined_scalar));
  const spmd::ArgminResult<Scalar> best = spmd::reduce_argmin<Scalar>(
      primary, spmd::MemView<const Scalar>(d_combined.view()),
      std::min(config.threads_per_block,
               primary.properties().max_threads_per_block));

  SelectionResult result;
  std::vector<double> cv(k);
  for (std::size_t b = 0; b < k; ++b) {
    cv[b] = combined[b] / static_cast<double>(n);
  }
  result.bandwidth = grid[best.index];
  result.cv_score = cv[best.index];
  result.grid = grid.values();
  result.scores = std::move(cv);
  result.evaluations = k;
  result.method = std::move(method_name);
  return result;
}

}  // namespace

SelectionResult MultiDeviceGridSelector::select(
    const data::Dataset& data, const BandwidthGrid& grid) const {
  data.validate();
  if (data.empty()) {
    throw std::invalid_argument("MultiDeviceGridSelector: empty dataset");
  }
  if (!is_sweepable(config_.kernel)) {
    throw std::invalid_argument(
        "MultiDeviceGridSelector: kernel '" +
        std::string(to_string(config_.kernel)) +
        "' is not supported by the device sweep");
  }
  return config_.precision == Precision::kFloat
             ? run_multi_device<float>(devices_, config_, data, grid, name())
             : run_multi_device<double>(devices_, config_, data, grid, name());
}

std::string MultiDeviceGridSelector::name() const {
  std::string n = "multi-device-grid(devices=" +
                  std::to_string(devices_.size()) + ",";
  n += to_string(config_.kernel);
  n += ",";
  n += to_string(config_.precision);
  if (config_.streaming) {
    n += ",streaming";
  }
  n += ")";
  return n;
}

}  // namespace kreg
