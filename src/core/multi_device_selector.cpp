#include "core/multi_device_selector.hpp"

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "core/batched_sweep.hpp"
#include "core/detail/batched_lanes.hpp"
#include "core/detail/device_sweep.hpp"
#include "core/detail/lane_reduce.hpp"
#include "core/window_sweep.hpp"
#include "parallel/blocked_range.hpp"
#include "spmd/reduce.hpp"

namespace kreg {

MultiDeviceGridSelector::MultiDeviceGridSelector(
    std::vector<spmd::Device*> devices, SpmdSelectorConfig config)
    : devices_(std::move(devices)), config_(config) {
  if (devices_.empty()) {
    throw std::invalid_argument("MultiDeviceGridSelector: no devices");
  }
  for (const spmd::Device* device : devices_) {
    if (device == nullptr) {
      throw std::invalid_argument("MultiDeviceGridSelector: null device");
    }
  }
  (void)resolve_lane_width(config_.lane_width);  // reject bad widths early
  config_.prefetch_distance =
      resolve_prefetch_distance(config_.prefetch_distance);
}

std::size_t MultiDeviceGridSelector::estimated_bytes_per_device(
    std::size_t n, std::size_t k, std::size_t devices, Precision precision,
    bool streaming, SweepAlgorithm algorithm, std::size_t k_block,
    KernelType kernel) {
  if (devices == 0) {
    throw std::invalid_argument("estimated_bytes_per_device: devices == 0");
  }
  const std::size_t elem =
      precision == Precision::kFloat ? sizeof(float) : sizeof(double);
  const std::size_t slice = (n + devices - 1) / devices;  // worst slice
  if (algorithm == SweepAlgorithm::kWindow) {
    // Replicated sorted x + y, the slice's carried window state, and one
    // slice×k_block residual block (k_block = 0 keeps the whole grid).
    const std::size_t kb = k_block == 0 ? k : std::min(k_block, k);
    const std::size_t terms = sweep_polynomial(kernel).max_power + 1;
    return 2 * n * elem + 2 * slice * terms * elem +
           2 * slice * sizeof(std::size_t) + slice * kb * elem;
  }
  // Full x + y replicated, plus slice-sized matrices and per-device scores.
  std::size_t elems = 2 * n + k + 3 * slice * k;
  if (!streaming) {
    elems += 2 * slice * n;
  }
  return elems * elem;
}

namespace {

template <class Scalar>
SelectionResult run_multi_device(const std::vector<spmd::Device*>& devices,
                                 const SpmdSelectorConfig& config,
                                 const data::Dataset& data,
                                 const BandwidthGrid& grid,
                                 std::string method_name) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const SweepPolynomial poly = sweep_polynomial(config.kernel);
  const bool streaming = config.streaming;

  const bool window = config.algorithm == SweepAlgorithm::kWindow;

  std::vector<Scalar> host_x(n);
  std::vector<Scalar> host_y(n);
  if (window) {
    // One global sort on the host; every device indexes the same sorted
    // arrays, each sweeping its contiguous slice of *positions*.
    SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
    host_x = std::move(sorted.x);
    host_y = std::move(sorted.y);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      host_x[i] = static_cast<Scalar>(data.x[i]);
      host_y[i] = static_cast<Scalar>(data.y[i]);
    }
  }
  std::vector<Scalar> host_grid(k);
  for (std::size_t b = 0; b < k; ++b) {
    host_grid[b] = static_cast<Scalar>(grid[b]);
  }

  const std::vector<parallel::BlockedRange> slices =
      parallel::partition_evenly(n, devices.size());

  // Combined per-bandwidth sums of squared residuals across devices.
  std::vector<double> combined(k, 0.0);

  if (window) {
    // Window path: shards are (device × n-block × k-block). Each device
    // sweeps its contiguous slice of sorted positions; within a device the
    // slice tiles further into n-blocks (each uploading only a halo-padded
    // slab of the sorted arrays and carrying slice totals in per-lane
    // accumulators — see lane_reduce.hpp) and the bandwidth grid streams
    // through in k-blocks, each dimension sized to that device's own
    // memory budget (a resident plan is simply the single-block
    // degenerate, so one code path serves both). Only the per-bandwidth
    // slice totals leave the device; every shard shape is bitwise
    // identical to the resident sweep.
    const std::size_t terms = poly.max_power + 1;
    const std::span<const Scalar> xs_host(host_x);
    const std::span<const Scalar> ys_host(host_y);
    const Scalar reach = host_grid.back();  // widest admission: h_max
    // Lane batching: the σ-sort key is a global property of the sorted
    // array, so one pass serves every device's slice.
    const std::size_t lane_width = resolve_lane_width(config.lane_width);
    AdmissionWindows win;
    if (lane_width > 1) {
      win = admission_windows<Scalar>(xs_host, reach);
    }
    for (std::size_t d = 0; d < slices.size(); ++d) {
      spmd::Device& device = *devices[d];
      const parallel::BlockedRange slice = slices[d];
      const std::size_t rows = slice.size();
      const std::size_t base = slice.begin;
      const std::size_t tpb = std::min(
          config.threads_per_block, device.properties().max_threads_per_block);
      const std::size_t elem = sizeof(Scalar);
      const std::size_t lane_dim =
          spmd::detail::reduction_block_dim(device, tpb);
      const std::size_t base_bytes = 2 * n * elem + 2 * rows * terms * elem +
                                     2 * rows * sizeof(std::size_t);
      const std::size_t per_k_bytes = rows * elem;
      const auto tile_bytes = [&, rows, base, k](std::size_t nb,
                                                 std::size_t kb)
          -> std::size_t {
        if (nb >= rows) {
          // Slice-resident: full sorted arrays + carry state + one block.
          return base_bytes + kb * per_k_bytes;
        }
        const std::size_t slab =
            detail::max_halo_span(xs_host, base, base + rows, nb, reach);
        return 2 * slab * elem +
               nb * (2 * terms * elem + 2 * sizeof(std::size_t)) +
               nb * kb * elem + k * lane_dim * elem;
      };
      const StreamingPlan plan = resolve_streaming_2d(
          config.stream, rows, k, base_bytes + k * per_k_bytes, tile_bytes,
          device.properties().memory_budget().global_bytes);

      if (plan.n_streamed) {
        // Carried per-(bandwidth, lane) accumulators, keyed on the
        // *slice-local* row index mod lane_dim — exactly how the resident
        // per-device reduce_sum lanes its slice — and zero-uploaded like
        // phase 1's initial state.
        spmd::DeviceBuffer<Scalar> d_lanes =
            device.alloc_global<Scalar>(k * lane_dim, "score-lanes");
        {
          const std::vector<Scalar> zeros(k * lane_dim, Scalar{});
          device.copy_to_device(d_lanes, std::span<const Scalar>(zeros));
        }
        spmd::MemView<Scalar> lanes = d_lanes.view();

        for (std::size_t n0 = 0; n0 < rows; n0 += plan.n_block) {
          const std::size_t nb = std::min(plan.n_block, rows - n0);
          const std::size_t slab_begin =
              detail::halo_begin(xs_host, base + n0, reach);
          const std::size_t slab_end =
              detail::halo_end(xs_host, base + n0 + nb - 1, reach);
          const std::size_t slab = slab_end - slab_begin;

          spmd::DeviceBuffer<Scalar> d_x =
              device.alloc_global<Scalar>(slab, "x-slab");
          spmd::DeviceBuffer<Scalar> d_y =
              device.alloc_global<Scalar>(slab, "y-slab");
          device.copy_to_device(d_x, xs_host.subspan(slab_begin, slab));
          device.copy_to_device(d_y, ys_host.subspan(slab_begin, slab));
          spmd::DeviceBuffer<std::size_t> d_lo =
              device.alloc_global<std::size_t>(nb, "window-lo");
          spmd::DeviceBuffer<std::size_t> d_hi =
              device.alloc_global<std::size_t>(nb, "window-hi");
          spmd::DeviceBuffer<Scalar> d_sm =
              device.alloc_global<Scalar>(nb * terms, "moment-s");
          spmd::DeviceBuffer<Scalar> d_tm =
              device.alloc_global<Scalar>(nb * terms, "moment-t");
          spmd::DeviceBuffer<Scalar> d_resid =
              device.alloc_global<Scalar>(nb * plan.k_block,
                                          "residual-block");

          std::span<const Scalar> xs = d_x.span();
          std::span<const Scalar> ys = d_y.span();
          spmd::MemView<std::size_t> lo_all = d_lo.view();
          spmd::MemView<std::size_t> hi_all = d_hi.view();
          spmd::MemView<Scalar> sm_all = d_sm.view();
          spmd::MemView<Scalar> tm_all = d_tm.view();
          spmd::MemView<Scalar> resid_all = d_resid.view();

          const spmd::LaunchConfig cfg = spmd::LaunchConfig::cover(nb, tpb);
          const std::size_t rel0 = base + n0 - slab_begin;

          std::vector<std::uint32_t> tile_order;
          if (lane_width > 1) {
            tile_order = sigma_batch_order(
                win.length, win.lo, base + n0, base + n0 + nb, tpb,
                config.sigma, sigma_position_bucket(sizeof(Scalar)));
          }
          const std::span<const std::uint32_t> order_s(tile_order);

          for (std::size_t b0 = 0; b0 < k; b0 += plan.k_block) {
            const std::size_t kb = std::min(plan.k_block, k - b0);
            const std::vector<Scalar> host_block(host_grid.begin() + b0,
                                                 host_grid.begin() + b0 + kb);
            spmd::ConstantBuffer<Scalar> c_block =
                device.upload_constant<Scalar>(host_block,
                                               "bandwidth-grid-block");
            spmd::MemView<const Scalar> hs = c_block.view();
            const bool first = b0 == 0;

            if (lane_width > 1) {
              // Batched fast path over slab-relative positions; carry and
              // residuals keyed by the observation's tile-relative index,
              // so the σ permutation never changes what any cell holds.
              detail::with_lane_width(lane_width, [&](auto width_c) {
                constexpr std::size_t C = decltype(width_c)::value;
                device.launch_lanes("cv_sweep_slice_tile", cfg, C,
                                    [&, nb, first, rel0](
                                        const spmd::LaneCtx& t) {
                  detail::LaneBatch<Scalar, C> st;
                  st.lanes = 0;
                  for (std::size_t l = 0; l < t.lanes; ++l) {
                    const std::size_t r = t.global_base() + l;
                    if (r < nb) {
                      st.pos[st.lanes++] = rel0 + order_s[r];
                    }
                  }
                  if (st.lanes == 0) {
                    return;
                  }
                  const auto key = [&st, rel0](std::size_t l) {
                    return st.pos[l] - rel0;
                  };
                  if (first) {
                    detail::batch_seed(st, xs, ys);
                  } else {
                    detail::batch_load(st, xs, ys, lo_all, hi_all, sm_all,
                                       tm_all, terms, key);
                  }
                  detail::batch_resume(
                      st, xs, ys, hs, poly,
                      [&](std::size_t b, std::size_t l, Scalar sq) {
                        const std::size_t q = st.pos[l] - rel0;
                        resid_all[b * nb + q] = sq;
                      },
                      config.prefetch_distance);
                  detail::batch_store(st, lo_all, hi_all, sm_all, tm_all,
                                      terms, key);
                });
              });
            } else {
              device.launch("cv_sweep_slice_tile", cfg,
                            [&, nb, kb, first, rel0](const spmd::ThreadCtx& t) {
                const std::size_t r = t.global_idx();
                if (r >= nb) {
                  return;
                }
                // Slab-relative position: the halo guarantees the slab
                // never truncates an admission, so the slab-edge guards
                // decide exactly as the resident full-array guards.
                const std::size_t pos = rel0 + r;
                Scalar s_m[SweepPolynomial::kMaxPower + 1] = {};
                Scalar t_m[SweepPolynomial::kMaxPower + 1] = {};
                std::size_t lo = 0;
                std::size_t hi = 0;
                if (first) {
                  detail::window_sweep_seed<Scalar>(
                      ys, pos, lo, hi, std::span<Scalar>(s_m, terms),
                      std::span<Scalar>(t_m, terms));
                } else {
                  lo = lo_all[r];
                  hi = hi_all[r];
                  for (std::size_t m = 0; m < terms; ++m) {
                    s_m[m] = sm_all[r * terms + m];
                    t_m[m] = tm_all[r * terms + m];
                  }
                }
                detail::window_sweep_resume<Scalar>(
                    xs, ys, hs, poly, pos, lo, hi,
                    std::span<Scalar>(s_m, terms),
                    std::span<Scalar>(t_m, terms),
                    [&](std::size_t b, Scalar sq) {
                      resid_all[b * nb + r] = sq;
                    });
                lo_all[r] = lo;
                hi_all[r] = hi;
                for (std::size_t m = 0; m < terms; ++m) {
                  sm_all[r * terms + m] = s_m[m];
                  tm_all[r * terms + m] = t_m[m];
                }
              });
            }

            // Lane accumulation: thread `lane` folds this block's
            // residuals for slice-local rows ≡ lane (mod lane_dim),
            // ascending — phase 1 of the per-device resident reduction
            // continued across n-blocks.
            device.launch("score_lane_accum", spmd::LaunchConfig{1, lane_dim},
                          [&, nb, kb, n0, b0](const spmd::ThreadCtx& t) {
              const std::size_t lane = t.global_idx();
              const std::size_t start =
                  detail::first_lane_row(n0, lane, lane_dim);
              for (std::size_t b = 0; b < kb; ++b) {
                for (std::size_t r = start; r < nb; r += lane_dim) {
                  lanes[(b0 + b) * lane_dim + lane] +=
                      resid_all[b * nb + r];
                }
              }
            });
          }
        }

        // Phase-2 replay: one tree reduction per bandwidth, same variant
        // as the per-device resident reduce_sum.
        for (std::size_t b = 0; b < k; ++b) {
          combined[b] += static_cast<double>(detail::lane_tree_reduce<Scalar>(
              device, lanes, b * lane_dim, lane_dim, config.reduce_variant));
        }
        continue;
      }

      spmd::DeviceBuffer<Scalar> d_x = device.alloc_global<Scalar>(n, "x");
      spmd::DeviceBuffer<Scalar> d_y = device.alloc_global<Scalar>(n, "y");
      device.copy_to_device(d_x, std::span<const Scalar>(host_x));
      device.copy_to_device(d_y, std::span<const Scalar>(host_y));

      spmd::DeviceBuffer<std::size_t> d_lo =
          device.alloc_global<std::size_t>(rows, "window-lo");
      spmd::DeviceBuffer<std::size_t> d_hi =
          device.alloc_global<std::size_t>(rows, "window-hi");
      spmd::DeviceBuffer<Scalar> d_sm =
          device.alloc_global<Scalar>(rows * terms, "moment-s");
      spmd::DeviceBuffer<Scalar> d_tm =
          device.alloc_global<Scalar>(rows * terms, "moment-t");
      spmd::DeviceBuffer<Scalar> d_resid =
          device.alloc_global<Scalar>(rows * plan.k_block, "residual-block");

      std::span<const Scalar> xs = d_x.span();
      std::span<const Scalar> ys = d_y.span();
      spmd::MemView<std::size_t> lo_all = d_lo.view();
      spmd::MemView<std::size_t> hi_all = d_hi.view();
      spmd::MemView<Scalar> sm_all = d_sm.view();
      spmd::MemView<Scalar> tm_all = d_tm.view();
      spmd::MemView<Scalar> resid_all = d_resid.view();

      const spmd::LaunchConfig cfg = spmd::LaunchConfig::cover(rows, tpb);

      std::vector<std::uint32_t> slice_order;
      if (lane_width > 1) {
        slice_order = sigma_batch_order(
            win.length, win.lo, base, base + rows, tpb, config.sigma,
            sigma_position_bucket(sizeof(Scalar)));
      }
      const std::span<const std::uint32_t> order_s(slice_order);

      for (std::size_t b0 = 0; b0 < k; b0 += plan.k_block) {
        const std::size_t kb = std::min(plan.k_block, k - b0);
        const std::vector<Scalar> host_block(host_grid.begin() + b0,
                                             host_grid.begin() + b0 + kb);
        spmd::ConstantBuffer<Scalar> c_block = device.upload_constant<Scalar>(
            host_block, "bandwidth-grid-block");
        spmd::MemView<const Scalar> hs = c_block.view();
        const bool first = b0 == 0;

        if (lane_width > 1) {
          // Batched fast path: carry and residuals keyed by the
          // observation's slice-relative index, so the σ permutation never
          // changes what any cell holds.
          detail::with_lane_width(lane_width, [&](auto width_c) {
            constexpr std::size_t C = decltype(width_c)::value;
            device.launch_lanes("cv_sweep_slice_kblock", cfg, C,
                                [&, base, rows, first](
                                    const spmd::LaneCtx& t) {
              detail::LaneBatch<Scalar, C> st;
              st.lanes = 0;
              for (std::size_t l = 0; l < t.lanes; ++l) {
                const std::size_t r = t.global_base() + l;
                if (r < rows) {
                  st.pos[st.lanes++] = base + order_s[r];
                }
              }
              if (st.lanes == 0) {
                return;
              }
              const auto key = [&st, base](std::size_t l) {
                return st.pos[l] - base;
              };
              if (first) {
                detail::batch_seed(st, xs, ys);
              } else {
                detail::batch_load(st, xs, ys, lo_all, hi_all, sm_all, tm_all,
                                   terms, key);
              }
              detail::batch_resume(
                  st, xs, ys, hs, poly,
                  [&](std::size_t b, std::size_t l, Scalar sq) {
                    const std::size_t q = st.pos[l] - base;
                    resid_all[b * rows + q] = sq;
                  },
                  config.prefetch_distance);
              detail::batch_store(st, lo_all, hi_all, sm_all, tm_all, terms,
                                  key);
            });
          });
        } else {
          device.launch("cv_sweep_slice_kblock", cfg,
                        [&, base, rows, kb, first](const spmd::ThreadCtx& t) {
            const std::size_t r = t.global_idx();
            if (r >= rows) {
              return;
            }
            const std::size_t pos = base + r;
            Scalar s_m[SweepPolynomial::kMaxPower + 1] = {};
            Scalar t_m[SweepPolynomial::kMaxPower + 1] = {};
            std::size_t lo = 0;
            std::size_t hi = 0;
            if (first) {
              detail::window_sweep_seed<Scalar>(ys, pos, lo, hi,
                                                std::span<Scalar>(s_m, terms),
                                                std::span<Scalar>(t_m, terms));
            } else {
              lo = lo_all[r];
              hi = hi_all[r];
              for (std::size_t m = 0; m < terms; ++m) {
                s_m[m] = sm_all[r * terms + m];
                t_m[m] = tm_all[r * terms + m];
              }
            }
            detail::window_sweep_resume<Scalar>(
                xs, ys, hs, poly, pos, lo, hi, std::span<Scalar>(s_m, terms),
                std::span<Scalar>(t_m, terms), [&](std::size_t b, Scalar sq) {
                  resid_all[b * rows + r] = sq;
                });
            lo_all[r] = lo;
            hi_all[r] = hi;
            for (std::size_t m = 0; m < terms; ++m) {
              sm_all[r * terms + m] = s_m[m];
              tm_all[r * terms + m] = t_m[m];
            }
          });
        }

        for (std::size_t b = 0; b < kb; ++b) {
          combined[b0 + b] += static_cast<double>(spmd::reduce_sum<Scalar>(
              device, resid_all.subview(b * rows, rows), tpb,
              config.reduce_variant));
        }
      }
    }
  }

  // Per-row-sort path (the paper-faithful baseline): skipped entirely when
  // the window algorithm ran above.
  for (std::size_t d = 0; !window && d < slices.size(); ++d) {
    spmd::Device& device = *devices[d];
    const parallel::BlockedRange slice = slices[d];
    const std::size_t rows = slice.size();
    const std::size_t tpb = std::min(
        config.threads_per_block, device.properties().max_threads_per_block);

    // Device-side data: the full X/Y (distances need every observation),
    // the grid in constant memory, and slice-sized working matrices.
    spmd::ConstantBuffer<Scalar> c_grid =
        device.upload_constant<Scalar>(host_grid, "bandwidth-grid");
    spmd::DeviceBuffer<Scalar> d_x = device.alloc_global<Scalar>(n, "x");
    spmd::DeviceBuffer<Scalar> d_y = device.alloc_global<Scalar>(n, "y");
    device.copy_to_device(d_x, std::span<const Scalar>(host_x));
    device.copy_to_device(d_y, std::span<const Scalar>(host_y));

    spmd::DeviceBuffer<Scalar> d_dist;
    spmd::DeviceBuffer<Scalar> d_ymat;
    if (!streaming) {
      d_dist = device.alloc_global<Scalar>(rows * n, "dist-rows");
      d_ymat = device.alloc_global<Scalar>(rows * n, "y-rows");
    }
    spmd::DeviceBuffer<Scalar> d_sum_y =
        device.alloc_global<Scalar>(rows * k, "sum-y");
    spmd::DeviceBuffer<Scalar> d_sum_w =
        device.alloc_global<Scalar>(rows * k, "sum-w");
    spmd::DeviceBuffer<Scalar> d_resid =
        device.alloc_global<Scalar>(rows * k, "residuals");
    spmd::DeviceBuffer<Scalar> d_scores =
        device.alloc_global<Scalar>(k, "slice-scores");

    std::span<const Scalar> xs = d_x.span();
    std::span<const Scalar> ys = d_y.span();
    spmd::MemView<const Scalar> hs = c_grid.view();
    std::span<Scalar> dist_all = d_dist.span();
    std::span<Scalar> ymat_all = d_ymat.span();
    spmd::MemView<Scalar> sum_y_all = d_sum_y.view();
    spmd::MemView<Scalar> sum_w_all = d_sum_w.view();
    spmd::MemView<Scalar> resid_all = d_resid.view();

    // Main kernel over this device's slice; residuals are written
    // bandwidth-major within the slice (k groups of `rows`).
    const spmd::LaunchConfig cfg = spmd::LaunchConfig::cover(rows, tpb);
    const std::size_t base = slice.begin;
    device.launch("cv_sweep_slice", cfg,
                  [&, base, rows, n, k](const spmd::ThreadCtx& t) {
      const std::size_t r = t.global_idx();
      if (r >= rows) {
        return;
      }
      const std::size_t obs = base + r;
      std::vector<Scalar> local_dist;
      std::vector<Scalar> local_y;
      std::span<Scalar> dist;
      std::span<Scalar> yrow;
      if (streaming) {
        local_dist.resize(n);
        local_y.resize(n);
        dist = local_dist;
        yrow = local_y;
      } else {
        dist = dist_all.subspan(r * n, n);
        yrow = ymat_all.subspan(r * n, n);
      }
      detail::sweep_thread<Scalar>(
          xs, ys, hs, poly, obs, dist, yrow, sum_y_all.subview(r * k, k),
          sum_w_all.subview(r * k, k),
          [&](std::size_t b, Scalar sq) { resid_all[b * rows + r] = sq; });
    });

    // Per-bandwidth slice reductions on this device.
    spmd::MemView<Scalar> scores = d_scores.view();
    for (std::size_t b = 0; b < k; ++b) {
      scores[b] = spmd::reduce_sum<Scalar>(device,
                                           resid_all.subview(b * rows, rows),
                                           tpb, config.reduce_variant);
    }
    for (std::size_t b = 0; b < k; ++b) {
      combined[b] += static_cast<double>(scores[b]);
    }
  }

  // Final argmin on device 0, as the published program does with its single
  // GPU (host-combined partials are uploaded as the reduction input).
  std::vector<Scalar> combined_scalar(k);
  for (std::size_t b = 0; b < k; ++b) {
    combined_scalar[b] = static_cast<Scalar>(combined[b]);
  }
  spmd::Device& primary = *devices.front();
  spmd::DeviceBuffer<Scalar> d_combined =
      primary.alloc_global<Scalar>(k, "combined-scores");
  primary.copy_to_device(d_combined, std::span<const Scalar>(combined_scalar));
  const spmd::ArgminResult<Scalar> best = spmd::reduce_argmin<Scalar>(
      primary, spmd::MemView<const Scalar>(d_combined.view()),
      std::min(config.threads_per_block,
               primary.properties().max_threads_per_block));

  SelectionResult result;
  std::vector<double> cv(k);
  for (std::size_t b = 0; b < k; ++b) {
    cv[b] = combined[b] / static_cast<double>(n);
  }
  result.bandwidth = grid[best.index];
  result.cv_score = cv[best.index];
  result.grid = grid.values();
  result.scores = std::move(cv);
  result.evaluations = k;
  result.method = std::move(method_name);
  return result;
}

}  // namespace

SelectionResult MultiDeviceGridSelector::select(
    const data::Dataset& data, const BandwidthGrid& grid) const {
  data.validate();
  if (data.empty()) {
    throw std::invalid_argument("MultiDeviceGridSelector: empty dataset");
  }
  if (!is_sweepable(config_.kernel)) {
    throw std::invalid_argument(
        "MultiDeviceGridSelector: kernel '" +
        std::string(to_string(config_.kernel)) +
        "' is not supported by the device sweep");
  }
  return config_.precision == Precision::kFloat
             ? run_multi_device<float>(devices_, config_, data, grid, name())
             : run_multi_device<double>(devices_, config_, data, grid, name());
}

std::string MultiDeviceGridSelector::name() const {
  std::string n = "multi-device-grid(devices=" +
                  std::to_string(devices_.size()) + ",";
  n += to_string(config_.kernel);
  n += ",";
  n += to_string(config_.precision);
  if (config_.streaming) {
    n += ",streaming";
  }
  if (config_.algorithm == SweepAlgorithm::kWindow) {
    n += ",window";
  }
  if (config_.stream.k_block != 0) {
    n += ",kblock=" + std::to_string(config_.stream.k_block);
  }
  if (config_.stream.n_block != 0) {
    n += ",nblock=" + std::to_string(config_.stream.n_block);
  }
  if (config_.stream.memory_budget_bytes != 0) {
    n += ",budget=" + std::to_string(config_.stream.memory_budget_bytes);
  }
  if (config_.algorithm == SweepAlgorithm::kWindow) {
    const std::size_t lanes = resolve_lane_width(config_.lane_width);
    if (lanes > 1) {
      n += ",lanes=" + std::to_string(lanes);
      if (config_.sigma != SigmaPolicy::kNone) {
        n += ",sigma=" + std::string(to_string(config_.sigma));
      }
      if (config_.prefetch_distance != 0) {
        n += ",prefetch=" + std::to_string(config_.prefetch_distance);
      }
    }
  }
  n += ")";
  return n;
}

}  // namespace kreg
