#include "core/streaming.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace kreg {

std::size_t parse_memory_budget(std::string_view text) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::size_t pos = 0;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  std::size_t value = 0;
  std::size_t digits = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
    const auto digit = static_cast<std::size_t>(text[pos] - '0');
    if (value > (kMax - digit) / 10) {
      throw std::invalid_argument("parse_memory_budget: '" +
                                  std::string(text) +
                                  "' overflows the byte counter");
    }
    value = value * 10 + digit;
    ++pos;
    ++digits;
  }
  if (digits == 0) {
    throw std::invalid_argument(
        text.empty() ? std::string("parse_memory_budget: empty input")
                     : "parse_memory_budget: no digits in '" +
                           std::string(text) + "'");
  }
  std::string suffix;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) == 0) {
    suffix.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[pos]))));
    ++pos;
  }
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  if (pos != text.size()) {
    throw std::invalid_argument("parse_memory_budget: trailing junk in '" +
                                std::string(text) + "'");
  }
  std::size_t mult = 1;
  if (suffix.empty() || suffix == "b") {
    mult = 1;
  } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
    mult = std::size_t{1} << 10;
  } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
    mult = std::size_t{1} << 20;
  } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
    mult = std::size_t{1} << 30;
  } else {
    throw std::invalid_argument("parse_memory_budget: unknown suffix '" +
                                suffix + "' in '" + std::string(text) + "'");
  }
  if (value > kMax / mult) {
    throw std::invalid_argument("parse_memory_budget: '" + std::string(text) +
                                "' overflows the byte counter");
  }
  if (value == 0) {
    // 0 means "derive from the environment/device" everywhere downstream; a
    // user who typed a budget of zero asked for something else — reject it
    // rather than silently un-setting the knob.
    throw std::invalid_argument(
        "parse_memory_budget: budget must be positive, got '" +
        std::string(text) + "'");
  }
  return value * mult;
}

std::size_t env_memory_budget() {
  const char* env = std::getenv("KREG_MEMORY_BUDGET");
  if (env == nullptr || env[0] == '\0') {
    return 0;
  }
  return parse_memory_budget(env);
}

StreamingPlan resolve_streaming(const StreamingConfig& config, std::size_t k,
                                std::size_t resident_bytes,
                                std::size_t base_bytes,
                                std::size_t per_k_bytes,
                                std::size_t device_capacity_bytes) {
  if (k == 0) {
    throw std::invalid_argument("resolve_streaming: empty grid");
  }
  StreamingPlan plan;
  plan.budget_bytes = config.memory_budget_bytes;
  if (plan.budget_bytes == 0 && config.auto_tune) {
    // The KREG_MEMORY_BUDGET ambient override only applies to auto-tuned
    // plans: auto_tune = false is an explicit in-code opt-out of streaming
    // and must not be flipped by the environment.
    plan.budget_bytes = env_memory_budget();
  }
  if (config.k_block != 0) {
    // An explicit block always takes the streamed path, even when one block
    // covers the whole grid — that is how tests pin the k_block ∈ {k, k+7}
    // degenerate cases to the same code as k_block = 1.
    plan.k_block = std::min(config.k_block, k);
    plan.streamed = true;
    return plan;
  }
  if (plan.budget_bytes == 0) {
    if (!config.auto_tune) {
      plan.k_block = k;
      return plan;
    }
    plan.budget_bytes = device_capacity_bytes;
  }
  if (device_capacity_bytes != 0 && plan.budget_bytes > device_capacity_bytes) {
    // A budget above the physical ledger cannot be spent: clamp, so a roomy
    // KREG_MEMORY_BUDGET on a small device still streams instead of letting
    // the resident plan run into a guaranteed DeviceAllocError.
    plan.budget_bytes = device_capacity_bytes;
  }
  if (resident_bytes <= plan.budget_bytes) {
    plan.k_block = k;
    return plan;
  }
  plan.streamed = true;
  if (base_bytes < plan.budget_bytes && per_k_bytes > 0) {
    plan.k_block = (plan.budget_bytes - base_bytes) / per_k_bytes;
  }
  if (plan.k_block == 0) {
    plan.k_block = 1;  // budget smaller than the carry state: degrade, let
                       // the device ledger have the final word
  }
  plan.k_block = std::min(plan.k_block, k);
  return plan;
}

namespace {

/// Largest kb in [1, k] with tile_bytes(nb, kb) <= budget; the caller has
/// already checked that kb = 1 fits. The cost is nondecreasing in kb (the
/// residual block grows), so plain binary search applies.
std::size_t largest_fitting_k_block(const TileBytesFn& tile_bytes,
                                    std::size_t nb, std::size_t k,
                                    std::size_t budget) {
  std::size_t lo = 1;
  std::size_t hi = k;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (tile_bytes(nb, mid) <= budget) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace

StreamingPlan resolve_streaming_2d(const StreamingConfig& config,
                                   std::size_t n, std::size_t k,
                                   std::size_t resident_bytes,
                                   const TileBytesFn& tile_bytes,
                                   std::size_t device_capacity_bytes) {
  if (n == 0) {
    throw std::invalid_argument("resolve_streaming_2d: empty dataset");
  }
  if (k == 0) {
    throw std::invalid_argument("resolve_streaming_2d: empty grid");
  }
  StreamingPlan plan;
  plan.budget_bytes = config.memory_budget_bytes;
  if (plan.budget_bytes == 0 && config.auto_tune) {
    plan.budget_bytes = env_memory_budget();
  }

  // --- Explicit blocks win ------------------------------------------------
  // Like the 1-D resolver, an explicit block pins the streamed code path
  // regardless of budget, so degenerate sizes (1, n−1, n, n+13, …) exercise
  // exactly the machinery the auto-tuner would pick, just with a forced
  // tile shape. The ledger keeps the final word on feasibility.
  const bool explicit_n = config.n_block != 0;
  const bool explicit_k = config.k_block != 0;
  if (explicit_n) {
    plan.n_block = std::min(config.n_block, n);
    plan.n_streamed = true;
    plan.streamed = true;
    if (explicit_k) {
      plan.k_block = std::min(config.k_block, k);
      return plan;
    }
    // n pinned, k free: size the k-block against the budget when there is
    // one; otherwise a single slice covers the whole grid.
    std::size_t budget = plan.budget_bytes;
    if (budget == 0 && config.auto_tune) {
      budget = device_capacity_bytes;
    }
    if (device_capacity_bytes != 0 && budget > device_capacity_bytes) {
      budget = device_capacity_bytes;
    }
    if (budget == 0 || tile_bytes(plan.n_block, 1) > budget) {
      plan.k_block = budget == 0 ? k : 1;  // explicit block: degrade, let
                                           // the ledger have the final word
    } else {
      plan.k_block = largest_fitting_k_block(tile_bytes, plan.n_block, k,
                                             budget);
    }
    return plan;
  }
  if (explicit_k) {
    // Explicit k-block with a free n: n stays resident — the 1-D streamed
    // path, bit-for-bit the pre-n-blocking behaviour.
    plan.k_block = std::min(config.k_block, k);
    plan.n_block = n;
    plan.streamed = true;
    return plan;
  }

  // --- Budget-driven auto plan -------------------------------------------
  if (plan.budget_bytes == 0) {
    if (!config.auto_tune) {
      plan.k_block = k;
      plan.n_block = n;
      return plan;
    }
    plan.budget_bytes = device_capacity_bytes;
  }
  if (device_capacity_bytes != 0 && plan.budget_bytes > device_capacity_bytes) {
    plan.budget_bytes = device_capacity_bytes;
  }
  if (resident_bytes <= plan.budget_bytes) {
    plan.k_block = k;
    plan.n_block = n;
    return plan;
  }
  plan.streamed = true;
  if (tile_bytes(n, 1) <= plan.budget_bytes) {
    // n-resident k-blocks suffice (the PR-4 plan, sized identically).
    plan.n_block = n;
    plan.k_block =
        largest_fitting_k_block(tile_bytes, n, k, plan.budget_bytes);
    return plan;
  }
  // The O(n) carry state itself is over budget: shrink the observation
  // block by halving until one tile fits. Halving (not binary search) keeps
  // the search robust to the halo's non-monotone block-boundary effects and
  // lands within 2× of the largest feasible block.
  plan.n_streamed = true;
  std::size_t nb = n;
  while (nb > 1 && tile_bytes(nb, 1) > plan.budget_bytes) {
    nb /= 2;
  }
  if (tile_bytes(nb, 1) > plan.budget_bytes) {
    throw StreamingBudgetError(
        "resolve_streaming_2d: budget of " +
        std::to_string(plan.budget_bytes) +
        " bytes cannot fit even the minimal (n_block=1, k_block=1) tile of " +
        std::to_string(tile_bytes(1, 1)) +
        " bytes — raise the budget or shrink the problem");
  }
  plan.n_block = nb;
  plan.k_block =
      largest_fitting_k_block(tile_bytes, nb, k, plan.budget_bytes);
  return plan;
}

}  // namespace kreg
