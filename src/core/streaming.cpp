#include "core/streaming.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace kreg {

std::size_t parse_memory_budget(std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  std::size_t value = 0;
  std::size_t digits = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
    value = value * 10 + static_cast<std::size_t>(text[pos] - '0');
    ++pos;
    ++digits;
  }
  if (digits == 0) {
    throw std::invalid_argument("parse_memory_budget: no digits in '" +
                                std::string(text) + "'");
  }
  std::string suffix;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) == 0) {
    suffix.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[pos]))));
    ++pos;
  }
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  if (pos != text.size()) {
    throw std::invalid_argument("parse_memory_budget: trailing junk in '" +
                                std::string(text) + "'");
  }
  std::size_t mult = 1;
  if (suffix.empty() || suffix == "b") {
    mult = 1;
  } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
    mult = std::size_t{1} << 10;
  } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
    mult = std::size_t{1} << 20;
  } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
    mult = std::size_t{1} << 30;
  } else {
    throw std::invalid_argument("parse_memory_budget: unknown suffix '" +
                                suffix + "' in '" + std::string(text) + "'");
  }
  return value * mult;
}

std::size_t env_memory_budget() {
  const char* env = std::getenv("KREG_MEMORY_BUDGET");
  if (env == nullptr || env[0] == '\0') {
    return 0;
  }
  return parse_memory_budget(env);
}

StreamingPlan resolve_streaming(const StreamingConfig& config, std::size_t k,
                                std::size_t resident_bytes,
                                std::size_t base_bytes,
                                std::size_t per_k_bytes,
                                std::size_t device_capacity_bytes) {
  if (k == 0) {
    throw std::invalid_argument("resolve_streaming: empty grid");
  }
  StreamingPlan plan;
  plan.budget_bytes = config.memory_budget_bytes;
  if (plan.budget_bytes == 0 && config.auto_tune) {
    // The KREG_MEMORY_BUDGET ambient override only applies to auto-tuned
    // plans: auto_tune = false is an explicit in-code opt-out of streaming
    // and must not be flipped by the environment.
    plan.budget_bytes = env_memory_budget();
  }
  if (config.k_block != 0) {
    // An explicit block always takes the streamed path, even when one block
    // covers the whole grid — that is how tests pin the k_block ∈ {k, k+7}
    // degenerate cases to the same code as k_block = 1.
    plan.k_block = std::min(config.k_block, k);
    plan.streamed = true;
    return plan;
  }
  if (plan.budget_bytes == 0) {
    if (!config.auto_tune) {
      plan.k_block = k;
      return plan;
    }
    plan.budget_bytes = device_capacity_bytes;
  }
  if (device_capacity_bytes != 0 && plan.budget_bytes > device_capacity_bytes) {
    // A budget above the physical ledger cannot be spent: clamp, so a roomy
    // KREG_MEMORY_BUDGET on a small device still streams instead of letting
    // the resident plan run into a guaranteed DeviceAllocError.
    plan.budget_bytes = device_capacity_bytes;
  }
  if (resident_bytes <= plan.budget_bytes) {
    plan.k_block = k;
    return plan;
  }
  plan.streamed = true;
  if (base_bytes < plan.budget_bytes && per_k_bytes > 0) {
    plan.k_block = (plan.budget_bytes - base_bytes) / per_k_bytes;
  }
  if (plan.k_block == 0) {
    plan.k_block = 1;  // budget smaller than the carry state: degrade, let
                       // the device ledger have the final word
  }
  plan.k_block = std::min(plan.k_block, k);
  return plan;
}

}  // namespace kreg
