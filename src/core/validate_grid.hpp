#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>

namespace kreg {

/// The one bandwidth-grid precondition shared by every incremental sweep
/// (window, sorted, KDE, weighted, batched, multivariate ray): the grid
/// must be non-empty, positive, and ascending — strictly so for the
/// bandwidth sweeps, whose admission pointers would re-test a duplicate
/// threshold and waste a profile entry (`strict = true`, the default);
/// the multivariate ray's scale multipliers tolerate duplicates
/// (`strict = false`).
///
/// `context` prefixes the uniform error text, e.g.
/// "window_cv_profile: bandwidth grid must be strictly ascending".
inline void validate_bandwidth_grid(std::span<const double> grid,
                                    const char* context, bool strict = true) {
  if (grid.empty()) {
    throw std::invalid_argument(std::string(context) +
                                ": bandwidth grid must be non-empty");
  }
  if (!(grid.front() > 0.0)) {
    throw std::invalid_argument(std::string(context) +
                                ": bandwidths must be > 0");
  }
  for (std::size_t b = 1; b < grid.size(); ++b) {
    const bool bad =
        strict ? grid[b] <= grid[b - 1] : grid[b] < grid[b - 1];
    if (bad) {
      throw std::invalid_argument(
          std::string(context) + ": bandwidth grid must be " +
          (strict ? "strictly ascending" : "ascending"));
    }
  }
}

/// The neighbor-count analogue for the k-NN window sweep: grids are integer
/// neighbor counts, strictly increasing, with every value in [1, n − 1] —
/// an observation has at most n − 1 leave-one-out neighbours, and k = 0
/// would make the LOOCV mean undefined. Kept beside the bandwidth
/// validator because the two grids share the same role (the ascending axis
/// a monotone admission window sweeps along); only the element type and
/// bounds differ.
inline void validate_neighbor_grid(std::span<const std::size_t> grid,
                                   std::size_t n, const char* context) {
  if (grid.empty()) {
    throw std::invalid_argument(std::string(context) +
                                ": neighbor grid must be non-empty");
  }
  if (grid.front() == 0) {
    throw std::invalid_argument(std::string(context) +
                                ": neighbor counts must be >= 1");
  }
  for (std::size_t b = 1; b < grid.size(); ++b) {
    if (grid[b] <= grid[b - 1]) {
      throw std::invalid_argument(
          std::string(context) +
          ": neighbor grid must be strictly increasing");
    }
  }
  if (n < 2 || grid.back() > n - 1) {
    throw std::invalid_argument(
        std::string(context) + ": neighbor count " +
        std::to_string(grid.back()) + " exceeds the " +
        std::to_string(n < 2 ? 0 : n - 1) +
        " leave-one-out neighbours of an n = " + std::to_string(n) +
        " dataset (need 1 <= k <= n - 1)");
  }
}

}  // namespace kreg
