#pragma once

#include <span>
#include <stdexcept>
#include <string>

namespace kreg {

/// The one bandwidth-grid precondition shared by every incremental sweep
/// (window, sorted, KDE, weighted, batched, multivariate ray): the grid
/// must be non-empty, positive, and ascending — strictly so for the
/// bandwidth sweeps, whose admission pointers would re-test a duplicate
/// threshold and waste a profile entry (`strict = true`, the default);
/// the multivariate ray's scale multipliers tolerate duplicates
/// (`strict = false`).
///
/// `context` prefixes the uniform error text, e.g.
/// "window_cv_profile: bandwidth grid must be strictly ascending".
inline void validate_bandwidth_grid(std::span<const double> grid,
                                    const char* context, bool strict = true) {
  if (grid.empty()) {
    throw std::invalid_argument(std::string(context) +
                                ": bandwidth grid must be non-empty");
  }
  if (!(grid.front() > 0.0)) {
    throw std::invalid_argument(std::string(context) +
                                ": bandwidths must be > 0");
  }
  for (std::size_t b = 1; b < grid.size(); ++b) {
    const bool bad =
        strict ? grid[b] <= grid[b - 1] : grid[b] < grid[b - 1];
    if (bad) {
      throw std::invalid_argument(
          std::string(context) + ": bandwidth grid must be " +
          (strict ? "strictly ascending" : "ascending"));
    }
  }
}

}  // namespace kreg
