#pragma once

#include <span>
#include <vector>

#include "core/kernels.hpp"
#include "data/dataset.hpp"
#include "parallel/thread_pool.hpp"

namespace kreg {

/// Least-squares cross-validation objective CV_lc(h) (paper Eq. 1):
///
///   CV_lc(h) = n⁻¹ Σ_i (Y_i − ĝ₋ᵢ(X_i))² M(X_i)
///
/// where ĝ₋ᵢ is the leave-one-out Nadaraya–Watson estimator (Eq. 2) and
/// M(X_i) = 1{denominator ≠ 0} drops observations with no neighbour inside
/// the bandwidth. Direct O(n²) evaluation — this is the objective the
/// numerical-optimizer baselines (Programs 1–2) call repeatedly, and the
/// ground truth the fast selectors are tested against.
///
/// Requires h > 0 and a validated dataset.
double cv_score(const data::Dataset& data, double h,
                KernelType kernel = KernelType::kEpanechnikov);

/// Same objective with the outer Σ_i evaluated across a thread pool
/// (deterministic: partials combine in slice order). nullptr = global pool.
double cv_score_parallel(const data::Dataset& data, double h,
                         KernelType kernel = KernelType::kEpanechnikov,
                         parallel::ThreadPool* pool = nullptr);

/// The leave-one-out prediction ĝ₋ᵢ(X_i) for one observation, plus its
/// M(X_i) indicator. Exposed for tests and the confidence-band module.
struct LooPrediction {
  double value = 0.0;  ///< ĝ₋ᵢ(X_i); meaningless when valid == false
  bool valid = false;  ///< M(X_i): denominator nonzero
};
LooPrediction loo_predict(const data::Dataset& data, std::size_t i, double h,
                          KernelType kernel = KernelType::kEpanechnikov);

/// All leave-one-out predictions at one bandwidth (one O(n²) pass).
std::vector<LooPrediction> loo_predict_all(
    const data::Dataset& data, double h,
    KernelType kernel = KernelType::kEpanechnikov);

}  // namespace kreg
