#include "core/job.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "core/grid.hpp"
#include "core/knn_sweep.hpp"
#include "core/oscv_sweep.hpp"
#include "core/spmd_selector.hpp"
#include "core/validate_grid.hpp"

namespace kreg {

std::string_view to_string(JobBackend backend) noexcept {
  switch (backend) {
    case JobBackend::kHostSweep:
      return "host";
    case JobBackend::kHostTiled:
      return "tiled";
    case JobBackend::kDevice:
      return "device";
  }
  return "?";
}

JobBackend parse_job_backend(std::string_view text) {
  if (text == "host") {
    return JobBackend::kHostSweep;
  }
  if (text == "tiled") {
    return JobBackend::kHostTiled;
  }
  if (text == "device") {
    return JobBackend::kDevice;
  }
  throw std::invalid_argument("parse_job_backend: unknown backend '" +
                              std::string(text) +
                              "' (expected host, tiled, or device)");
}

void validate_job(const SelectionJob& job) {
  if (!job.data) {
    throw std::invalid_argument("SelectionJob: dataset handle is null");
  }
  job.data->validate();
  if (job.data->empty()) {
    throw std::invalid_argument("SelectionJob: dataset is empty");
  }
  if (job.estimator == EstimatorKind::kKnn) {
    if (!job.bandwidth_grid.empty()) {
      throw std::invalid_argument(
          "SelectionJob: bandwidth_grid set on a knn job (use neighbor_grid)");
    }
    validate_neighbor_grid(job.neighbor_grid, job.data->size(),
                           "SelectionJob");
  } else {
    if (!job.neighbor_grid.empty()) {
      throw std::invalid_argument(
          "SelectionJob: neighbor_grid set on a bandwidth job");
    }
    validate_bandwidth_grid(job.bandwidth_grid, "SelectionJob");
    if (!is_sweepable(job.kernel)) {
      throw std::invalid_argument("SelectionJob: kernel '" +
                                  std::string(to_string(job.kernel)) +
                                  "' is not supported by the window sweep");
    }
  }
  resolve_lane_width(job.lane_width);  // throws on anything but 0/1/4/8/16
}

SelectionProfile profile_from_scores(const SelectionJob& job,
                                     std::vector<double> scores,
                                     std::string method) {
  if (scores.size() != job.grid_size()) {
    throw std::invalid_argument(
        "profile_from_scores: profile/grid size mismatch");
  }
  SelectionProfile profile;
  profile.estimator = job.estimator;
  if (job.estimator == EstimatorKind::kKnn) {
    profile.grid.reserve(job.neighbor_grid.size());
    for (const std::size_t count : job.neighbor_grid) {
      profile.grid.push_back(static_cast<double>(count));
    }
  } else {
    profile.grid = job.bandwidth_grid;
  }
  profile.scores = std::move(scores);
  for (std::size_t i = 1; i < profile.scores.size(); ++i) {
    if (profile.scores[i] < profile.scores[profile.argmin]) {
      profile.argmin = i;
    }
  }
  profile.cv_score = profile.scores[profile.argmin];
  switch (job.estimator) {
    case EstimatorKind::kNadarayaWatson:
    case EstimatorKind::kKnn:
      profile.selected = profile.grid[profile.argmin];
      break;
    case EstimatorKind::kOscv:
      profile.selected =
          oscv_rescale_constant(job.kernel) * profile.grid[profile.argmin];
      break;
  }
  profile.method = std::move(method);
  return profile;
}

std::string job_method(const SelectionJob& job) {
  return std::string("job:") + std::string(to_string(job.estimator)) + ":" +
         std::string(to_string(job.backend)) + ":" +
         std::string(to_string(job.kernel)) + ":" +
         std::string(to_string(job.precision));
}

namespace {

spmd::Device& require_device(const JobContext& ctx) {
  if (ctx.device == nullptr) {
    throw std::invalid_argument(
        "run_job: device backend requested but JobContext carries no device");
  }
  return *ctx.device;
}

std::vector<double> run_nw(const SelectionJob& job, const JobContext& ctx) {
  switch (job.backend) {
    case JobBackend::kHostSweep:
      return window_cv_profile(*job.data, job.bandwidth_grid, job.kernel,
                               job.precision);
    case JobBackend::kHostTiled:
      return window_cv_profile_tiled(*job.data, job.bandwidth_grid, job.kernel,
                                     job.precision, job.tiling, ctx.pool);
    case JobBackend::kDevice: {
      SpmdSelectorConfig config;
      config.kernel = job.kernel;
      config.precision = job.precision;
      config.stream = job.stream;
      config.lane_width = job.lane_width;
      config.sigma = job.sigma;
      const SpmdGridSelector selector(require_device(ctx), config);
      SelectionResult result = selector.select(
          *job.data, BandwidthGrid::from_values(job.bandwidth_grid));
      return std::move(result.scores);
    }
  }
  throw std::invalid_argument("run_job: unknown backend");
}

std::vector<double> run_knn(const SelectionJob& job, const JobContext& ctx) {
  switch (job.backend) {
    case JobBackend::kHostSweep:
      return knn_cv_profile(*job.data, job.neighbor_grid, job.precision);
    case JobBackend::kHostTiled:
      return knn_cv_profile_tiled(*job.data, job.neighbor_grid, job.precision,
                                  job.tiling, ctx.pool);
    case JobBackend::kDevice: {
      KnnDeviceConfig config;
      config.precision = job.precision;
      config.stream = job.stream;
      return knn_cv_profile_device(require_device(ctx), *job.data,
                                   job.neighbor_grid, config);
    }
  }
  throw std::invalid_argument("run_job: unknown backend");
}

std::vector<double> run_oscv(const SelectionJob& job, const JobContext& ctx) {
  switch (job.backend) {
    case JobBackend::kHostSweep:
      return oscv_profile(*job.data, job.bandwidth_grid, job.kernel,
                          job.precision);
    case JobBackend::kHostTiled:
      return oscv_profile_tiled(*job.data, job.bandwidth_grid, job.kernel,
                                job.precision, job.tiling, ctx.pool);
    case JobBackend::kDevice: {
      OscvDeviceConfig config;
      config.precision = job.precision;
      config.stream = job.stream;
      return oscv_profile_device(require_device(ctx), *job.data,
                                 job.bandwidth_grid, job.kernel, config);
    }
  }
  throw std::invalid_argument("run_job: unknown backend");
}

}  // namespace

SelectionProfile run_job(const SelectionJob& job, const JobContext& ctx) {
  validate_job(job);
  std::vector<double> scores;
  switch (job.estimator) {
    case EstimatorKind::kNadarayaWatson:
      scores = run_nw(job, ctx);
      break;
    case EstimatorKind::kKnn:
      scores = run_knn(job, ctx);
      break;
    case EstimatorKind::kOscv:
      scores = run_oscv(job, ctx);
      break;
  }
  return profile_from_scores(job, std::move(scores), job_method(job));
}

std::size_t job_streamed_bytes(const SelectionJob& job, std::size_t k_block) {
  const std::size_t n = job.data ? job.data->size() : 0;
  switch (job.estimator) {
    case EstimatorKind::kNadarayaWatson:
      return SpmdGridSelector::estimated_streamed_bytes(n, k_block,
                                                        job.precision,
                                                        job.kernel);
    case EstimatorKind::kKnn:
      return knn_estimated_streamed_bytes(n, k_block, job.precision);
    case EstimatorKind::kOscv:
      return oscv_estimated_streamed_bytes(n, k_block, job.precision,
                                           job.kernel);
  }
  return 0;
}

}  // namespace kreg
