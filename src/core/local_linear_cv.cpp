#include "core/local_linear_cv.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace kreg {

LooPrediction loo_predict_local_linear(const data::Dataset& data,
                                       std::size_t i, double h,
                                       KernelType kernel) {
  // Weighted least squares of Y on (1, X − X_i) over l ≠ i; the intercept
  // is the prediction at X_i.
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double t0 = 0.0;
  double t1 = 0.0;
  for (std::size_t l = 0; l < data.size(); ++l) {
    if (l == i) {
      continue;
    }
    const double d = data.x[l] - data.x[i];
    const double w = kernel_value(kernel, d / h);
    if (w == 0.0) {
      continue;
    }
    s0 += w;
    s1 += w * d;
    s2 += w * d * d;
    t0 += w * data.y[l];
    t1 += w * data.y[l] * d;
  }
  LooPrediction out;
  if (s0 == 0.0) {
    return out;  // M(X_i) = 0
  }
  out.valid = true;
  const double det = s0 * s2 - s1 * s1;
  const double scale = std::max(s0 * s2, 1e-300);
  if (std::abs(det) <= 1e-12 * scale) {
    out.value = t0 / s0;  // degenerate design: local-constant fallback
  } else {
    out.value = (s2 * t0 - s1 * t1) / det;
  }
  return out;
}

double cv_score_local_linear(const data::Dataset& data, double h,
                             KernelType kernel) {
  if (!(h > 0.0)) {
    throw std::invalid_argument(
        "cv_score_local_linear: bandwidth must be positive");
  }
  if (data.empty()) {
    throw std::invalid_argument("cv_score_local_linear: empty dataset");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const LooPrediction p = loo_predict_local_linear(data, i, h, kernel);
    if (p.valid) {
      const double e = data.y[i] - p.value;
      acc += e * e;
    }
  }
  return acc / static_cast<double>(data.size());
}

SelectionResult LocalLinearGridSelector::select(
    const data::Dataset& data, const BandwidthGrid& grid) const {
  data.validate();
  std::vector<double> scores(grid.size(), 0.0);
  if (parallel_) {
    parallel::parallel_for(
        grid.size(),
        [&](std::size_t b) {
          scores[b] = cv_score_local_linear(data, grid[b], kernel_);
        },
        pool_);
  } else {
    for (std::size_t b = 0; b < grid.size(); ++b) {
      scores[b] = cv_score_local_linear(data, grid[b], kernel_);
    }
  }
  return selection_from_profile(grid, std::move(scores), name());
}

std::string LocalLinearGridSelector::name() const {
  return std::string("local-linear-grid(") + std::string(to_string(kernel_)) +
         (parallel_ ? ",parallel" : "") + ")";
}

}  // namespace kreg
