#pragma once

#include <span>
#include <vector>

#include "core/grid.hpp"
#include "core/kde.hpp"
#include "core/kernels.hpp"
#include "parallel/thread_pool.hpp"

namespace kreg {

/// The paper's sorting-based sweep applied to KDE bandwidth selection — the
/// first extension its §II promises ("the methods developed here for
/// least-squares cross-validation can be applied to … optimal bandwidth
/// selection for kernel density estimation").
///
/// LSCV(h) = R(K)/(nh) + (n²h)⁻¹ Σ_{i≠l} K̄(Δ/h) − 2(n(n−1)h)⁻¹ Σ_{i≠l} K(Δ/h)
///
/// with K̄ = K*K. For the Epanechnikov and Uniform kernels both K (support
/// [0,1]) and K̄ (support [0,2]) are polynomials in |u|, so the §III
/// argument carries over verbatim: sort each observation's distance row
/// once, then sweep the ascending bandwidth grid with *two* admission
/// pointers (|Δ| ≤ h for the K sum, |Δ| ≤ 2h for the K̄ sum) extending the
/// shared moment sums Σ|Δ|^m incrementally. All k bandwidths cost
/// O(n log n) per observation — O(n² log n) total versus O(k·n²) for the
/// direct evaluation in kde_lscv_score.
///
/// Expanded convolution polynomials (|u| ≤ 2):
///   Epanechnikov: K̄(u) = 0.6 − 0.75u² + 0.375|u|³ − (3/160)|u|⁵
///   Uniform:      K̄(u) = 0.5 − |u|/4
/// (The Triangular's K̄ is piecewise and the Gaussian's is unbounded, so
/// they stay on the direct path.)

/// True when the sweep supports this kernel's LSCV (compact polynomial K
/// *and* single-polynomial K̄): Epanechnikov and Uniform.
bool is_kde_sweepable(KernelType kernel) noexcept;

/// LSCV profile for every h in the ascending grid via the sorted sweep.
/// Requires is_kde_sweepable(kernel), n >= 2, positive ascending grid.
std::vector<double> kde_sweep_lscv_profile(std::span<const double> xs,
                                           std::span<const double> grid,
                                           KernelType kernel);

/// Same profile with observations distributed across a thread pool.
std::vector<double> kde_sweep_lscv_profile_parallel(
    std::span<const double> xs, std::span<const double> grid,
    KernelType kernel, parallel::ThreadPool* pool = nullptr);

/// Window-sweep LSCV profile: X is sorted **once globally**, then each
/// observation grows two two-pointer windows over the sorted array (|Δ| ≤ h
/// for the K sum, |Δ| ≤ 2h for the K̄ sum) across the ascending grid — the
/// same fast-sum-updating argument as the regression window sweep, since K
/// and K̄ = K*K are both compact polynomials. O(n log n + n·(k + admitted))
/// total instead of the per-row-sort O(n² log n); identical profile up to
/// floating-point recombination error.
std::vector<double> kde_window_lscv_profile(std::span<const double> xs,
                                            std::span<const double> grid,
                                            KernelType kernel);

/// Same window profile with observations distributed across a thread pool.
std::vector<double> kde_window_lscv_profile_parallel(
    std::span<const double> xs, std::span<const double> grid,
    KernelType kernel, parallel::ThreadPool* pool = nullptr);

/// Grid selection using the sweep profile (argmin, smallest-index ties).
SelectionResult kde_select_sweep(std::span<const double> xs,
                                 const BandwidthGrid& grid,
                                 KernelType kernel = KernelType::kEpanechnikov);

/// Grid selection using the window-sweep profile.
SelectionResult kde_select_window(
    std::span<const double> xs, const BandwidthGrid& grid,
    KernelType kernel = KernelType::kEpanechnikov);

}  // namespace kreg
