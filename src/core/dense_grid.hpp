#pragma once

#include "core/selectors.hpp"

namespace kreg {

/// One-pass grid search without sorting — the paper's footnote 1 remark
/// made concrete: "The Gaussian … does not use an indicator function to
/// exclude observations and can consequently be constructed for k different
/// bandwidths without the need for a sort."
///
/// For kernels with unbounded support (and for compact kernels too, where
/// it serves as a second reference implementation) the k bandwidth-specific
/// numerator/denominator sums can be accumulated in a single pass over the
/// O(n²) pairs: compute each |X_i − X_l| once, then update all k
/// accumulators. Two pair-level optimizations over the naive per-bandwidth
/// recomputation:
///
///   1. symmetry — K((X_i−X_l)/h) = K((X_l−X_i)/h), so each unordered pair
///      is visited once and credited to both observations;
///   2. distance hoisting — |X_i − X_l| is computed once per pair instead
///      of once per (pair, bandwidth).
///
/// Still O(k·n²) asymptotically (each pair touches every bandwidth), but a
/// constant factor faster than NaiveGridSelector and the only grid selector
/// besides it that supports the Gaussian and Cosine kernels. Memory: three
/// n×k accumulator tables.
class DenseGridSelector final : public Selector {
 public:
  explicit DenseGridSelector(KernelType kernel = KernelType::kGaussian,
                             parallel::ThreadPool* pool = nullptr,
                             bool parallel = false)
      : kernel_(kernel), pool_(pool), parallel_(parallel) {}

  SelectionResult select(const data::Dataset& data,
                         const BandwidthGrid& grid) const override;
  std::string name() const override;

 private:
  KernelType kernel_;
  parallel::ThreadPool* pool_;
  bool parallel_;
};

}  // namespace kreg
