#pragma once

#include <cstddef>
#include <string>

#include "core/batched_sweep.hpp"
#include "core/selectors.hpp"
#include "core/streaming.hpp"
#include "spmd/device.hpp"
#include "spmd/reduce.hpp"

namespace kreg {

/// Memory layout of the squared-residual matrix (paper §IV-B).
enum class ResidualLayout {
  /// n groups of k: natural for the per-thread bandwidth loop that writes.
  kObservationMajor,
  /// k groups of n — the paper's choice: "the matrix indices are switched
  /// at this stage… the array is indexed as k separate groups of n" so each
  /// per-bandwidth reduction reads a contiguous run.
  kBandwidthMajor,
};
std::string_view to_string(ResidualLayout layout) noexcept;

/// Configuration of the SPMD (device) grid selector.
struct SpmdSelectorConfig {
  KernelType kernel = KernelType::kEpanechnikov;
  /// The paper computes in single precision; kDouble is this library's
  /// extension. Note the constant-memory cap halves for doubles
  /// (1,024 bandwidths instead of 2,048).
  Precision precision = Precision::kFloat;
  /// Paper: "the fastest performance was found with threads per block set
  /// to 512, the maximum possible on the GPU being used".
  std::size_t threads_per_block = 512;
  ResidualLayout layout = ResidualLayout::kBandwidthMajor;
  spmd::ReduceVariant reduce_variant = spmd::ReduceVariant::kSequential;
  /// Extension (the paper's stated future work): stream each observation's
  /// distance row through thread-local scratch instead of materializing the
  /// two n×n global-memory matrices, lifting the n ≤ 20,000 limit. Only
  /// meaningful for kPerRowSort — the window sweep has no rows to stream.
  bool streaming = false;
  /// Per-thread sweep algorithm. kWindow (the default, after parity soak):
  /// threads index into the host-sorted X/Y in device-global memory with a
  /// two-pointer window — no private rows, no per-thread sort, and no n×n
  /// matrices, lifting the paper's §IV-A n ≤ 20,000 allocation limit
  /// without streaming. kPerRowSort stays selectable as the paper-faithful
  /// §IV-B ablation baseline.
  SweepAlgorithm algorithm = SweepAlgorithm::kWindow;
  /// 2-D (n-block × k-block) streaming of the window sweep (see
  /// core/streaming.hpp): k-blocks tile the bandwidth grid so only one
  /// n×k_block residual block is resident (window state carried in O(n)
  /// buffers); n-blocks tile the observations too, uploading only a
  /// halo-padded slab of the sorted arrays per block and carrying score
  /// totals in per-lane accumulators, so nothing O(n) stays resident.
  /// Defaults keep small problems on the resident path and engage each
  /// streaming dimension automatically only when the previous plan would
  /// exceed the device's global memory (or an explicit/KREG_MEMORY_BUDGET
  /// budget). Streaming also lifts the constant-cache cap on k: only one
  /// block of bandwidths occupies constant memory at a time. Every tiling
  /// is bitwise identical to the resident sweep. Window algorithm only.
  StreamingConfig stream;
  /// Lane-batched execution of the window kernels (see
  /// core/detail/batched_lanes.hpp): each device dispatch steps a group of
  /// `lane_width` threads in lockstep over σ-sorted observations — the
  /// batch interpretation of SIMT execution. 0 = auto
  /// (kreg::kDefaultLaneWidth); 1 = the legacy one-thread-at-a-time scalar
  /// kernels; 4/8/16 = batched. Residuals and carried window state stay
  /// keyed by observation, so every lane width is bitwise identical to the
  /// scalar kernels. Window algorithm only.
  std::size_t lane_width = 0;
  /// σ-sort each launch block's observations before grouping into lanes
  /// (see kreg::SigmaPolicy): kLength groups similar admission-window
  /// lengths (coherent simulated warps), kPositionLength additionally
  /// groups nearby window positions so a dispatch's lanes read overlapping
  /// index ranges (cache-resident gathers, contiguous-run fast path). Pure
  /// scheduling permutation: profiles are bitwise identical for every
  /// policy. Ignored when lane_width resolves to 1.
  SigmaPolicy sigma = SigmaPolicy::kPositionLength;
  /// Software-prefetch distance for the batched lane-resume inner loops,
  /// in phase-2 steps ahead. 0 = off; kPrefetchFromEnv (the default)
  /// reads KREG_PREFETCH_DIST. Resolved (and validated) at construction.
  std::size_t prefetch_distance = kPrefetchFromEnv;
};

/// **Program 4** — "CUDA on GPU": the paper's parallel grid search on the
/// simulated SPMD device.
///
/// Faithful (non-streaming) mode reproduces the paper's §IV memory plan and
/// kernel sequence exactly:
///   1. X, Y and two n×n matrices (|X_i − X_l| and Y) in global memory; the
///      bandwidth grid in constant memory (≤ 8 KB ⇒ k ≤ 2,048 floats).
///   2. Main kernel, one thread per observation, 512 threads/block: fill
///      the thread's rows, sort them with the iterative quicksort (Y as the
///      auxiliary variable), sweep the ascending grid accumulating the
///      bandwidth-specific sums into two n×k matrices, then loop over the k
///      bandwidths computing (Y_j − ĝ₋ⱼ(X_j))²·M(X_j) into an n×k residual
///      matrix with transposed (bandwidth-major) indexing.
///   3. k single-block Harris-style sum reductions (one per bandwidth)
///      produce the CV scores; one argmin reduction with index payload
///      picks the winner.
///
/// Because the device charges every allocation against its 4 GB ledger,
/// the paper's capacity cliff reproduces: with float matrices the largest
/// feasible sample is ≈ 20,000 observations, and larger n throws
/// spmd::DeviceAllocError (catchable; see bench_memory_limit). Streaming
/// mode removes the n×n matrices and the limit.
class SpmdGridSelector final : public Selector {
 public:
  /// The device must outlive the selector.
  explicit SpmdGridSelector(spmd::Device& device,
                            SpmdSelectorConfig config = {});

  SelectionResult select(const data::Dataset& data,
                         const BandwidthGrid& grid) const override;
  std::string name() const override;

  const SpmdSelectorConfig& config() const noexcept { return config_; }

  /// Predicted device-memory footprint of a (n, k) problem in bytes —
  /// what select() will ask the ledger for. Used by the memory-limit bench
  /// to chart the paper's n > 20,000 failure (and the window sweep's
  /// removal of it).
  static std::size_t estimated_bytes(
      std::size_t n, std::size_t k, Precision precision, bool streaming,
      SweepAlgorithm algorithm = SweepAlgorithm::kPerRowSort);

  /// Predicted device-memory footprint of the *streamed* window plan with
  /// the given k-block: the O(n) sorted arrays and carry state plus one
  /// n×k_block residual block. `k_block = 0` gives the k-independent base
  /// cost alone (what resolve_streaming sizes blocks against).
  static std::size_t estimated_streamed_bytes(
      std::size_t n, std::size_t k_block, Precision precision,
      KernelType kernel = KernelType::kEpanechnikov);

 private:
  spmd::Device& device_;
  SpmdSelectorConfig config_;
};

}  // namespace kreg
