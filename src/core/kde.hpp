#pragma once

#include <span>
#include <vector>

#include "core/grid.hpp"
#include "core/kernels.hpp"
#include "core/types.hpp"

namespace kreg {

/// Kernel density estimator  f̂(x) = (nh)⁻¹ Σ_l K((x − X_l)/h).
///
/// KDE bandwidth selection is the paper's first listed extension target
/// ("the methods developed here … can be applied to … optimal bandwidth
/// selection for kernel density estimation"); this module provides the
/// estimator and its least-squares cross-validation criterion.
class KernelDensity {
 public:
  /// Throws std::invalid_argument on an empty sample or h <= 0.
  KernelDensity(std::vector<double> xs, double bandwidth,
                KernelType kernel = KernelType::kEpanechnikov);

  /// f̂(x); always finite and >= 0.
  double operator()(double x) const;

  /// Density curve over an evenly spaced grid covering the sample range
  /// extended by one bandwidth on each side.
  struct Curve {
    std::vector<double> x;
    std::vector<double> density;
  };
  Curve curve(std::size_t points) const;

  double bandwidth() const noexcept { return bandwidth_; }
  KernelType kernel() const noexcept { return kernel_; }

 private:
  std::vector<double> xs_;
  double bandwidth_;
  KernelType kernel_;
};

/// K*K, the kernel's self-convolution, needed by the exact LSCV criterion.
/// Closed forms are implemented for the Epanechnikov, Uniform and Gaussian
/// kernels; other kernels throw std::invalid_argument.
double kernel_self_convolution(KernelType kernel, double u);
bool has_self_convolution(KernelType kernel) noexcept;

/// Least-squares cross-validation criterion for KDE (unbiased estimator of
/// the integrated squared error up to a constant):
///
///   LSCV(h) = ∫f̂² − (2/n) Σ_i f̂₋ᵢ(X_i)
///           = R(K)/(nh) + (n h)⁻¹ n⁻¹ Σ_{i≠l} K̄(Δ/h) − 2 (n(n−1)h)⁻¹ Σ_{i≠l} K(Δ/h)
///
/// with K̄ = K*K. O(n²) per bandwidth. Requires h > 0, n >= 2 and a kernel
/// with a closed-form self-convolution.
double kde_lscv_score(std::span<const double> xs, double h,
                      KernelType kernel = KernelType::kEpanechnikov);

/// Grid search over LSCV(h): the direct analogue of the regression
/// selectors for the density problem.
SelectionResult kde_select_grid(std::span<const double> xs,
                                const BandwidthGrid& grid,
                                KernelType kernel = KernelType::kEpanechnikov);

/// Pointwise confidence band for a kernel density estimate — the paper's
/// other stated extension ("leave-one-out cross-validated confidence
/// intervals for kernel density estimates"). Uses the asymptotic pointwise
/// variance Var f̂(x) ≈ f(x)·R(K)/(nh) with f̂ plugged in for f; the lower
/// edge is clamped at 0. Bias from smoothing is not corrected (as usual for
/// these bands), so coverage dips at sharp density features.
struct DensityBand {
  std::vector<double> x;
  std::vector<double> density;
  std::vector<double> lower;
  std::vector<double> upper;
  double bandwidth = 0.0;
  double level = 0.0;
};
DensityBand kde_confidence_band(std::span<const double> xs, double h,
                                KernelType kernel = KernelType::kEpanechnikov,
                                std::size_t points = 100, double level = 0.95);

}  // namespace kreg
