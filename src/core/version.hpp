#pragma once

namespace kreg {

/// Library version, semantic. 1.0.0 corresponds to the full reproduction of
/// Rohlfs & Zahran (IPPS 2017) plus the extensions listed in DESIGN.md §7.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace kreg
