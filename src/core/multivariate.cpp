#include "core/multivariate.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace kreg {

double product_kernel_weight(KernelType kernel, std::span<const double> u) {
  double w = 1.0;
  for (double uj : u) {
    w *= kernel_value(kernel, uj);
    if (w == 0.0) {
      return 0.0;  // compact kernel excluded this observation
    }
  }
  return w;
}

namespace {

void check_bandwidths(const data::MDataset& data,
                      std::span<const double> bandwidths) {
  if (bandwidths.size() != data.dim) {
    throw std::invalid_argument(
        "multivariate: bandwidth count != regressor dimension");
  }
  for (double h : bandwidths) {
    if (!(h > 0.0)) {
      throw std::invalid_argument("multivariate: bandwidths must be > 0");
    }
  }
}

/// Product weight between observation l and the point x.
double weight_at(const data::MDataset& data, std::size_t l,
                 std::span<const double> x, std::span<const double> bandwidths,
                 KernelType kernel) {
  double w = 1.0;
  const std::span<const double> xl = data.row(l);
  for (std::size_t j = 0; j < data.dim; ++j) {
    w *= kernel_value(kernel, (x[j] - xl[j]) / bandwidths[j]);
    if (w == 0.0) {
      return 0.0;
    }
  }
  return w;
}

}  // namespace

NadarayaWatsonMulti::NadarayaWatsonMulti(data::MDataset data,
                                         std::vector<double> bandwidths,
                                         KernelType kernel)
    : data_(std::move(data)),
      bandwidths_(std::move(bandwidths)),
      kernel_(kernel) {
  data_.validate();
  if (data_.size() == 0) {
    throw std::invalid_argument("NadarayaWatsonMulti: empty dataset");
  }
  check_bandwidths(data_, bandwidths_);
}

double NadarayaWatsonMulti::operator()(std::span<const double> x) const {
  if (x.size() != data_.dim) {
    throw std::invalid_argument(
        "NadarayaWatsonMulti: evaluation point dimension mismatch");
  }
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t l = 0; l < data_.size(); ++l) {
    const double w = weight_at(data_, l, x, bandwidths_, kernel_);
    numerator += data_.y[l] * w;
    denominator += w;
  }
  if (denominator == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return numerator / denominator;
}

LooPrediction loo_predict_multi(const data::MDataset& data, std::size_t i,
                                std::span<const double> bandwidths,
                                KernelType kernel) {
  double numerator = 0.0;
  double denominator = 0.0;
  const std::span<const double> xi = data.row(i);
  for (std::size_t l = 0; l < data.size(); ++l) {
    if (l == i) {
      continue;
    }
    const double w = weight_at(data, l, xi, bandwidths, kernel);
    numerator += data.y[l] * w;
    denominator += w;
  }
  LooPrediction out;
  if (denominator != 0.0) {
    out.value = numerator / denominator;
    out.valid = true;
  }
  return out;
}

double cv_score_multi(const data::MDataset& data,
                      std::span<const double> bandwidths, KernelType kernel,
                      parallel::ThreadPool* pool) {
  if (data.size() == 0) {
    throw std::invalid_argument("cv_score_multi: empty dataset");
  }
  check_bandwidths(data, bandwidths);
  const double total = parallel::parallel_reduce<double>(
      data.size(), 0.0,
      [&](std::size_t i) {
        const LooPrediction p = loo_predict_multi(data, i, bandwidths, kernel);
        if (!p.valid) {
          return 0.0;
        }
        const double e = data.y[i] - p.value;
        return e * e;
      },
      [](double a, double b) { return a + b; }, pool);
  return total / static_cast<double>(data.size());
}

std::vector<BandwidthGrid> default_grids_for(const data::MDataset& data,
                                             std::size_t k) {
  data.validate();
  std::vector<BandwidthGrid> grids;
  grids.reserve(data.dim);
  for (std::size_t j = 0; j < data.dim; ++j) {
    const double domain = data.domain(j);
    if (!(domain > 0.0)) {
      throw std::invalid_argument(
          "default_grids_for: degenerate domain in dimension " +
          std::to_string(j));
    }
    grids.emplace_back(domain / static_cast<double>(k), domain, k);
  }
  return grids;
}

MultiSelectionResult multi_grid_search(const data::MDataset& data,
                                       const std::vector<BandwidthGrid>& grids,
                                       KernelType kernel,
                                       parallel::ThreadPool* pool) {
  data.validate();
  if (grids.size() != data.dim) {
    throw std::invalid_argument("multi_grid_search: need one grid per dim");
  }
  // Total number of cells in the Cartesian product.
  std::size_t cells = 1;
  for (const BandwidthGrid& g : grids) {
    cells *= g.size();
  }
  if (cells == 0) {
    throw std::invalid_argument("multi_grid_search: empty grid");
  }

  // Decode cell index -> per-dimension bandwidth vector (row-major order:
  // the last dimension varies fastest, so ties break lexicographically).
  const auto decode = [&](std::size_t cell) {
    std::vector<double> h(data.dim);
    for (std::size_t j = data.dim; j-- > 0;) {
      const std::size_t kj = grids[j].size();
      h[j] = grids[j][cell % kj];
      cell /= kj;
    }
    return h;
  };

  std::vector<double> scores(cells);
  parallel::parallel_for(
      cells,
      [&](std::size_t cell) {
        const std::vector<double> h = decode(cell);
        // Inner CV runs serially; the cell loop provides the parallelism.
        scores[cell] = cv_score_multi(data, h, kernel, nullptr);
      },
      pool,
      parallel::Schedule::kDynamic, /*chunk=*/1);

  std::size_t best = 0;
  for (std::size_t cell = 1; cell < cells; ++cell) {
    if (scores[cell] < scores[best]) {
      best = cell;
    }
  }
  MultiSelectionResult result;
  result.bandwidths = decode(best);
  result.cv_score = scores[best];
  result.evaluations = cells;
  result.method = "multi-grid(" + std::string(to_string(kernel)) + ")";
  return result;
}

MultiSelectionResult multi_coordinate_descent(
    const data::MDataset& data, const std::vector<BandwidthGrid>& grids,
    KernelType kernel, std::size_t max_cycles, parallel::ThreadPool* pool) {
  data.validate();
  if (grids.size() != data.dim) {
    throw std::invalid_argument(
        "multi_coordinate_descent: need one grid per dim");
  }
  if (max_cycles == 0) {
    throw std::invalid_argument("multi_coordinate_descent: max_cycles == 0");
  }

  // Initialize at each grid's midpoint.
  std::vector<double> current(data.dim);
  for (std::size_t j = 0; j < data.dim; ++j) {
    current[j] = grids[j][grids[j].size() / 2];
  }
  double current_score = cv_score_multi(data, current, kernel, pool);
  std::size_t evaluations = 1;

  for (std::size_t cycle = 0; cycle < max_cycles; ++cycle) {
    bool improved = false;
    for (std::size_t j = 0; j < data.dim; ++j) {
      // Sweep dimension j's grid with the other coordinates held fixed.
      std::vector<double> trial = current;
      for (std::size_t b = 0; b < grids[j].size(); ++b) {
        trial[j] = grids[j][b];
        const double score = cv_score_multi(data, trial, kernel, pool);
        ++evaluations;
        if (score < current_score) {
          current_score = score;
          current[j] = trial[j];
          improved = true;
        }
      }
    }
    if (!improved) {
      break;
    }
  }

  MultiSelectionResult result;
  result.bandwidths = current;
  result.cv_score = current_score;
  result.evaluations = evaluations;
  result.method =
      "multi-coordinate-descent(" + std::string(to_string(kernel)) + ")";
  return result;
}

}  // namespace kreg
