#include "core/auto_regress.hpp"

#include <memory>
#include <stdexcept>

#include "core/dense_grid.hpp"
#include "core/oscv_sweep.hpp"
#include "core/refine.hpp"

namespace kreg {

FittedRegression::FittedRegression(data::Dataset data,
                                   SelectionResult selection,
                                   KernelType kernel)
    : data_(std::move(data)),
      selection_(std::move(selection)),
      fit_(data_, selection_.bandwidth, kernel) {}

ConfidenceBand FittedRegression::confidence_band(std::size_t points,
                                                 double level) const {
  return nw_confidence_band(data_, selection_.bandwidth, fit_.kernel(),
                            points, level);
}

namespace {

/// The paper's §V crossover: sequential programs win below n ≈ 1,000 for
/// the per-row-sort sweep. The window sweep does a small constant amount of
/// work per observation (no per-row fill/sort), so thread-pool overhead
/// amortizes later — it stays sequential until n ≈ 4,000.
constexpr std::size_t kParallelCrossover = 1000;
constexpr std::size_t kWindowParallelCrossover = 4000;

std::unique_ptr<Selector> pick_selector(const data::Dataset& data,
                                        const AutoOptions& options) {
  using Backend = AutoOptions::Backend;
  const bool window = options.algorithm == SweepAlgorithm::kWindow;
  Backend backend = options.backend;
  if (backend == Backend::kDevice && options.device == nullptr) {
    throw std::invalid_argument("auto_regress: Backend::kDevice needs device");
  }
  if (options.criterion == AutoOptions::Criterion::kOscv) {
    if (!is_sweepable(options.kernel)) {
      throw std::invalid_argument(
          "auto_regress: OSCV needs a sweepable kernel (one-sided windows "
          "require compact polynomial support)");
    }
    if (backend == Backend::kDevice) {
      throw std::invalid_argument(
          "auto_regress: OSCV runs on host backends here; use "
          "oscv_profile_device for the device path");
    }
    const bool parallel =
        backend == Backend::kParallel ||
        (backend == Backend::kAuto &&
         data.size() >= kWindowParallelCrossover);
    return std::make_unique<OscvSweepSelector>(
        options.kernel, Precision::kDouble, parallel);
  }
  if (backend == Backend::kAuto) {
    const std::size_t crossover =
        window ? kWindowParallelCrossover : kParallelCrossover;
    if (data.size() < crossover) {
      backend = Backend::kSequential;
    } else if (options.device != nullptr &&
               is_sweepable(options.kernel)) {
      backend = Backend::kDevice;
    } else {
      backend = Backend::kParallel;
    }
  }

  // Non-sweepable kernels (Gaussian, Cosine) fall back to the dense
  // one-pass search on host backends.
  if (!is_sweepable(options.kernel)) {
    if (backend == Backend::kDevice) {
      throw std::invalid_argument(
          "auto_regress: kernel not supported by the device sweep");
    }
    return std::make_unique<DenseGridSelector>(
        options.kernel, nullptr, backend == Backend::kParallel);
  }

  switch (backend) {
    case Backend::kSequential:
      if (window) {
        return std::make_unique<WindowSweepSelector>(options.kernel);
      }
      return std::make_unique<SortedGridSelector>(options.kernel);
    case Backend::kParallel:
      if (window) {
        return std::make_unique<WindowSweepSelector>(
            options.kernel, Precision::kDouble, /*parallel=*/true);
      }
      return std::make_unique<ParallelSortedGridSelector>(options.kernel);
    case Backend::kDevice: {
      SpmdSelectorConfig cfg;
      cfg.kernel = options.kernel;
      cfg.algorithm = options.algorithm;
      return std::make_unique<SpmdGridSelector>(*options.device, cfg);
    }
    case Backend::kAuto:
      break;  // resolved above
  }
  throw std::logic_error("auto_regress: unreachable backend");
}

}  // namespace

FittedRegression auto_regress(const data::Dataset& data,
                              const AutoOptions& options) {
  data.validate();
  if (data.size() < 2) {
    throw std::invalid_argument("auto_regress: need at least 2 observations");
  }
  if (options.grid_size == 0) {
    throw std::invalid_argument("auto_regress: grid_size must be >= 1");
  }
  if (options.refine && options.criterion == AutoOptions::Criterion::kOscv) {
    throw std::invalid_argument(
        "auto_regress: refine is incompatible with the OSCV criterion (the "
        "zoom rounds assume the selected bandwidth is a grid point of the "
        "searched profile; OSCV reports the rescaled h = C*b)");
  }
  const BandwidthGrid grid =
      BandwidthGrid::default_for(data, options.grid_size);
  const std::unique_ptr<Selector> selector = pick_selector(data, options);

  SelectionResult selection;
  if (options.refine) {
    selection = refine_select(*selector, data, grid);
  } else {
    selection = selector->select(data, grid);
  }
  return FittedRegression(data, std::move(selection), options.kernel);
}

}  // namespace kreg
