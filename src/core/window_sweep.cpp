#include "core/window_sweep.hpp"

#include <stdexcept>
#include <string>

#include "core/detail/device_sweep.hpp"
#include "core/validate_grid.hpp"
#include "parallel/parallel_for.hpp"
#include "sort/argsort.hpp"

namespace kreg {

template <class Scalar>
SortedDataset<Scalar> sort_dataset(std::span<const double> x,
                                   std::span<const double> y) {
  // One permutation, two indexed gathers. resize + direct stores keep the
  // gather loops free of capacity checks (push_back re-tests capacity per
  // element), and this runs on every sweep call.
  const std::vector<std::size_t> perm = sort::argsort<double>(x);
  const std::size_t n = x.size();
  SortedDataset<Scalar> sorted;
  sorted.x.resize(n);
  sorted.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted.x[i] = static_cast<Scalar>(x[perm[i]]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    sorted.y[i] = static_cast<Scalar>(y[perm[i]]);
  }
  return sorted;
}

template SortedDataset<float> sort_dataset<float>(std::span<const double>,
                                                  std::span<const double>);
template SortedDataset<double> sort_dataset<double>(std::span<const double>,
                                                    std::span<const double>);

namespace {

void check_window_inputs(const data::Dataset& data,
                         std::span<const double> grid, KernelType kernel,
                         const char* fn) {
  if (data.empty()) {
    throw std::invalid_argument(std::string(fn) + ": empty dataset");
  }
  validate_bandwidth_grid(grid, fn);
  if (!is_sweepable(kernel)) {
    throw std::invalid_argument(
        std::string(fn) + ": kernel '" + std::string(to_string(kernel)) +
        "' is not supported by the window sweep; use the naive path");
  }
}

template <class Scalar>
std::vector<double> profile_sequential(const data::Dataset& data,
                                       std::span<const double> grid,
                                       KernelType kernel) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const SweepPolynomial poly = sweep_polynomial(kernel);
  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  std::vector<Scalar> host_grid(grid.begin(), grid.end());

  // The CV criterion sums squared residuals over *all* observations, so the
  // sweep can visit them in sorted order — no inverse permutation needed.
  std::vector<double> totals(k, 0.0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    detail::window_sweep_thread<Scalar>(
        std::span<const Scalar>(sorted.x), std::span<const Scalar>(sorted.y),
        std::span<const Scalar>(host_grid), poly, pos,
        [&](std::size_t b, Scalar sq) {
          totals[b] += static_cast<double>(sq);
        });
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

template <class Scalar>
std::vector<double> profile_parallel(const data::Dataset& data,
                                     std::span<const double> grid,
                                     KernelType kernel,
                                     parallel::ThreadPool* pool) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const SweepPolynomial poly = sweep_polynomial(kernel);
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }

  // One global sort, shared read-only by every worker.
  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  const std::vector<Scalar> host_grid(grid.begin(), grid.end());
  const std::span<const Scalar> xs(sorted.x);
  const std::span<const Scalar> ys(sorted.y);
  const std::span<const Scalar> hs(host_grid);

  // One private accumulator per worker slice; combined in slice order so
  // the result is independent of scheduling.
  const std::vector<parallel::BlockedRange> slices =
      parallel::partition_evenly(n, pool->size());
  std::vector<std::vector<double>> partials(slices.size(),
                                            std::vector<double>(k, 0.0));

  parallel::parallel_for(
      slices.size(),
      [&](std::size_t s) {
        std::vector<double>& acc = partials[s];
        for (std::size_t pos = slices[s].begin; pos < slices[s].end; ++pos) {
          detail::window_sweep_thread<Scalar>(
              xs, ys, hs, poly, pos, [&](std::size_t b, Scalar sq) {
                acc[b] += static_cast<double>(sq);
              });
        }
      },
      pool);

  std::vector<double> totals(k, 0.0);
  for (const std::vector<double>& partial : partials) {
    for (std::size_t b = 0; b < k; ++b) {
      totals[b] += partial[b];
    }
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

template <class Scalar>
std::vector<double> profile_tiled(const data::Dataset& data,
                                  std::span<const double> grid,
                                  KernelType kernel, HostTiling tiling,
                                  parallel::ThreadPool* pool) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const SweepPolynomial poly = sweep_polynomial(kernel);
  const std::size_t terms = poly.max_power + 1;
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }
  // Auto tiling: a tile's carry is 2 pointers + 2·terms scalars per
  // observation (≤ 128 B at terms = 7 double); 2048 observations keep it
  // within a ~256 KiB L2 slice alongside the sorted-array window it reads.
  const std::size_t n_block = tiling.n_block != 0 ? tiling.n_block : 2048;
  const std::size_t k_block =
      tiling.k_block != 0 ? std::min(tiling.k_block, k) : std::min<std::size_t>(64, k);

  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  const std::vector<Scalar> host_grid(grid.begin(), grid.end());
  const std::span<const Scalar> xs(sorted.x);
  const std::span<const Scalar> ys(sorted.y);

  const std::size_t tiles = (n + n_block - 1) / n_block;
  std::vector<std::vector<double>> partials(tiles,
                                            std::vector<double>(k, 0.0));

  parallel::parallel_for(
      tiles,
      [&](std::size_t tile) {
        const std::size_t begin = tile * n_block;
        const std::size_t nb = std::min(n_block, n - begin);
        std::vector<double>& acc = partials[tile];

        // Carried window state for every observation in the tile.
        std::vector<std::size_t> lo(nb);
        std::vector<std::size_t> hi(nb);
        std::vector<Scalar> sm(nb * terms);
        std::vector<Scalar> tm(nb * terms);
        for (std::size_t r = 0; r < nb; ++r) {
          detail::window_sweep_seed<Scalar>(
              ys, begin + r, lo[r], hi[r],
              std::span<Scalar>(sm.data() + r * terms, terms),
              std::span<Scalar>(tm.data() + r * terms, terms));
        }

        // k-blocks innermost, in ascending order (monotone windows): each
        // (tile, k-block) cell touches only the tile's carry and a k_block
        // slice of the accumulator.
        for (std::size_t b0 = 0; b0 < k; b0 += k_block) {
          const std::size_t kb = std::min(k_block, k - b0);
          const std::span<const Scalar> hs(host_grid.data() + b0, kb);
          for (std::size_t r = 0; r < nb; ++r) {
            detail::window_sweep_resume<Scalar>(
                xs, ys, hs, poly, begin + r, lo[r], hi[r],
                std::span<Scalar>(sm.data() + r * terms, terms),
                std::span<Scalar>(tm.data() + r * terms, terms),
                [&](std::size_t b, Scalar sq) {
                  acc[b0 + b] += static_cast<double>(sq);
                });
          }
        }
      },
      pool);

  std::vector<double> totals(k, 0.0);
  for (const std::vector<double>& partial : partials) {
    for (std::size_t b = 0; b < k; ++b) {
      totals[b] += partial[b];
    }
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

}  // namespace

std::vector<double> window_cv_profile(const data::Dataset& data,
                                      std::span<const double> grid,
                                      KernelType kernel, Precision precision) {
  check_window_inputs(data, grid, kernel, "window_cv_profile");
  return precision == Precision::kFloat
             ? profile_sequential<float>(data, grid, kernel)
             : profile_sequential<double>(data, grid, kernel);
}

std::vector<double> window_cv_profile_parallel(const data::Dataset& data,
                                               std::span<const double> grid,
                                               KernelType kernel,
                                               Precision precision,
                                               parallel::ThreadPool* pool) {
  check_window_inputs(data, grid, kernel, "window_cv_profile_parallel");
  return precision == Precision::kFloat
             ? profile_parallel<float>(data, grid, kernel, pool)
             : profile_parallel<double>(data, grid, kernel, pool);
}

std::vector<double> window_cv_profile_tiled(const data::Dataset& data,
                                            std::span<const double> grid,
                                            KernelType kernel,
                                            Precision precision,
                                            HostTiling tiling,
                                            parallel::ThreadPool* pool) {
  check_window_inputs(data, grid, kernel, "window_cv_profile_tiled");
  return precision == Precision::kFloat
             ? profile_tiled<float>(data, grid, kernel, tiling, pool)
             : profile_tiled<double>(data, grid, kernel, tiling, pool);
}

HostTiling host_tiling_from_stream(const StreamingConfig& stream) {
  HostTiling tiling;
  tiling.n_block = stream.n_block;
  tiling.k_block = stream.k_block;
  if (tiling.n_block == 0) {
    std::size_t budget = stream.memory_budget_bytes;
    if (budget == 0 && stream.auto_tune) {
      budget = env_memory_budget();
    }
    if (budget != 0) {
      // The profile_tiled auto-tiling doc's carry model: ≲128 B per
      // observation (two pointers + two moment vectors at terms = 7).
      tiling.n_block = std::max<std::size_t>(1, budget / 128);
    }
  }
  return tiling;
}

}  // namespace kreg
