#include "core/knn_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/detail/device_sweep.hpp"
#include "core/validate_grid.hpp"
#include "parallel/parallel_for.hpp"

namespace kreg {

namespace {

void check_knn_inputs(const data::Dataset& data,
                      std::span<const std::size_t> kgrid, const char* fn) {
  if (data.empty()) {
    throw std::invalid_argument(std::string(fn) + ": empty dataset");
  }
  validate_neighbor_grid(kgrid, data.size(), fn);
}

template <class Scalar>
std::vector<double> profile_sequential(const data::Dataset& data,
                                       std::span<const std::size_t> kgrid) {
  const std::size_t n = data.size();
  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);

  std::vector<double> totals(kgrid.size(), 0.0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    detail::knn_sweep_thread<Scalar>(
        std::span<const Scalar>(sorted.x), std::span<const Scalar>(sorted.y),
        kgrid, pos, [&](std::size_t b, Scalar sq) {
          totals[b] += static_cast<double>(sq);
        });
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

template <class Scalar>
std::vector<double> profile_parallel(const data::Dataset& data,
                                     std::span<const std::size_t> kgrid,
                                     parallel::ThreadPool* pool) {
  const std::size_t n = data.size();
  const std::size_t k = kgrid.size();
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }
  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  const std::span<const Scalar> xs(sorted.x);
  const std::span<const Scalar> ys(sorted.y);

  // Private per-slice accumulators combined in slice order: deterministic
  // regardless of scheduling, and every (pos, b) residual is bit-identical
  // to the sequential sweep's — only the per-b summation regroups across
  // slice boundaries (bitwise equal when one slice covers n).
  const std::vector<parallel::BlockedRange> slices =
      parallel::partition_evenly(n, pool->size());
  std::vector<std::vector<double>> partials(slices.size(),
                                            std::vector<double>(k, 0.0));
  parallel::parallel_for(
      slices.size(),
      [&](std::size_t s) {
        std::vector<double>& acc = partials[s];
        for (std::size_t pos = slices[s].begin; pos < slices[s].end; ++pos) {
          detail::knn_sweep_thread<Scalar>(xs, ys, kgrid, pos,
                                           [&](std::size_t b, Scalar sq) {
                                             acc[b] += static_cast<double>(sq);
                                           });
        }
      },
      pool);

  std::vector<double> totals(k, 0.0);
  for (const std::vector<double>& partial : partials) {
    for (std::size_t b = 0; b < k; ++b) {
      totals[b] += partial[b];
    }
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

template <class Scalar>
std::vector<double> profile_tiled(const data::Dataset& data,
                                  std::span<const std::size_t> kgrid,
                                  HostTiling tiling,
                                  parallel::ThreadPool* pool) {
  const std::size_t n = data.size();
  const std::size_t k = kgrid.size();
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }
  // The k-NN carry is two pointers + two side sums per observation — far
  // under the bandwidth sweep's ≲128 B model — so the same auto tile sizes
  // are comfortably cache-resident.
  const std::size_t n_block = tiling.n_block != 0 ? tiling.n_block : 2048;
  const std::size_t k_block = tiling.k_block != 0
                                  ? std::min(tiling.k_block, k)
                                  : std::min<std::size_t>(64, k);

  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  const std::span<const Scalar> xs(sorted.x);
  const std::span<const Scalar> ys(sorted.y);

  const std::size_t tiles = (n + n_block - 1) / n_block;
  std::vector<std::vector<double>> partials(tiles,
                                            std::vector<double>(k, 0.0));
  parallel::parallel_for(
      tiles,
      [&](std::size_t tile) {
        const std::size_t begin = tile * n_block;
        const std::size_t nb = std::min(n_block, n - begin);
        std::vector<double>& acc = partials[tile];

        std::vector<std::size_t> lo(nb);
        std::vector<std::size_t> hi(nb);
        std::vector<Scalar> sum_l(nb);
        std::vector<Scalar> sum_r(nb);
        for (std::size_t r = 0; r < nb; ++r) {
          detail::knn_sweep_seed<Scalar>(begin + r, lo[r], hi[r], sum_l[r],
                                         sum_r[r]);
        }

        // k-blocks innermost, ascending (the windows are monotone in k).
        for (std::size_t b0 = 0; b0 < k; b0 += k_block) {
          const std::size_t kb = std::min(k_block, k - b0);
          const std::span<const std::size_t> ks = kgrid.subspan(b0, kb);
          for (std::size_t r = 0; r < nb; ++r) {
            detail::knn_sweep_resume<Scalar>(
                xs, ys, ks, begin + r, lo[r], hi[r], sum_l[r], sum_r[r],
                [&](std::size_t b, Scalar sq) {
                  acc[b0 + b] += static_cast<double>(sq);
                });
          }
        }
      },
      pool);

  std::vector<double> totals(k, 0.0);
  for (const std::vector<double>& partial : partials) {
    for (std::size_t b = 0; b < k; ++b) {
      totals[b] += partial[b];
    }
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

/// The O(n²·|grid|) reference. Works on the same sorted arrays as the fast
/// sweep (the estimator is permutation-invariant, so sorting first loses
/// no generality) and re-accumulates each tie-inclusive window outward
/// from scratch per (observation, k) — the same per-side fold order the
/// fast sweep's carried sums follow, which is what makes the two paths
/// bitwise-comparable rather than merely tolerance-close.
template <class Scalar>
std::vector<double> profile_naive(const data::Dataset& data,
                                  std::span<const std::size_t> kgrid) {
  const std::size_t n = data.size();
  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  const std::span<const Scalar> xs(sorted.x);
  const std::span<const Scalar> ys(sorted.y);

  std::vector<double> totals(kgrid.size(), 0.0);
  std::vector<Scalar> dist(n > 0 ? n - 1 : 0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const Scalar xi = xs[pos];
    std::size_t d = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != pos) {
        dist[d++] = std::abs(xs[j] - xi);
      }
    }
    for (std::size_t b = 0; b < kgrid.size(); ++b) {
      const std::size_t k = kgrid[b];
      // r_k: the k-th smallest LOO distance, by selection. nth_element
      // reorders `dist`, which later selections tolerate.
      std::nth_element(dist.begin(),
                       dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       dist.end());
      const Scalar radius = dist[k - 1];
      Scalar sum_left{};
      Scalar sum_right{};
      std::size_t count = 0;
      for (std::size_t j = pos; j > 0 && xi - xs[j - 1] <= radius; --j) {
        sum_left += ys[j - 1];
        ++count;
      }
      for (std::size_t j = pos + 1; j < n && xs[j] - xi <= radius; ++j) {
        sum_right += ys[j];
        ++count;
      }
      const Scalar e =
          ys[pos] - (sum_left + sum_right) / static_cast<Scalar>(count);
      totals[b] += static_cast<double>(e * e);
    }
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

/// Device path: k-block streamed (resident = the one-pass case). One
/// thread per observation resumes the sweep over the current grid slice
/// into a bandwidth-major residual block; one thread per grid entry then
/// folds its n residuals in ascending observation order into a double
/// accumulator — the same values in the same order as the sequential host
/// fold, so the device profile is bitwise equal to knn_cv_profile.
template <class Scalar>
std::vector<double> profile_device(spmd::Device& device,
                                   const data::Dataset& data,
                                   std::span<const std::size_t> kgrid,
                                   const KnnDeviceConfig& config) {
  const std::size_t n = data.size();
  const std::size_t k = kgrid.size();
  const std::size_t tpb = config.threads_per_block;

  const StreamingPlan plan = resolve_streaming(
      config.stream, k, knn_estimated_streamed_bytes(n, k, config.precision),
      knn_estimated_streamed_bytes(n, 0, config.precision),
      n * sizeof(Scalar) + sizeof(double),
      device.properties().memory_budget().global_bytes);

  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);

  spmd::DeviceBuffer<Scalar> d_x = device.alloc_global<Scalar>(n, "x");
  spmd::DeviceBuffer<Scalar> d_y = device.alloc_global<Scalar>(n, "y");
  device.copy_to_device(d_x, std::span<const Scalar>(sorted.x));
  device.copy_to_device(d_y, std::span<const Scalar>(sorted.y));

  // O(n) carry state surviving across k-block launches.
  spmd::DeviceBuffer<std::size_t> d_lo =
      device.alloc_global<std::size_t>(n, "knn-lo");
  spmd::DeviceBuffer<std::size_t> d_hi =
      device.alloc_global<std::size_t>(n, "knn-hi");
  spmd::DeviceBuffer<Scalar> d_sum_l =
      device.alloc_global<Scalar>(n, "knn-sum-left");
  spmd::DeviceBuffer<Scalar> d_sum_r =
      device.alloc_global<Scalar>(n, "knn-sum-right");

  // The one resident residual block (bandwidth-major), plus the per-entry
  // score totals the ordered fold writes.
  spmd::DeviceBuffer<Scalar> d_resid =
      device.alloc_global<Scalar>(n * plan.k_block, "knn-residual-block");
  spmd::DeviceBuffer<double> d_scores =
      device.alloc_global<double>(plan.k_block, "knn-score-block");

  std::span<const Scalar> xs = d_x.span();
  std::span<const Scalar> ys = d_y.span();
  spmd::MemView<std::size_t> lo_all = d_lo.view();
  spmd::MemView<std::size_t> hi_all = d_hi.view();
  spmd::MemView<Scalar> sum_l_all = d_sum_l.view();
  spmd::MemView<Scalar> sum_r_all = d_sum_r.view();
  spmd::MemView<Scalar> resid_all = d_resid.view();
  spmd::MemView<double> scores_all = d_scores.view();

  const spmd::LaunchConfig main_cfg = spmd::LaunchConfig::cover(n, tpb);
  std::vector<double> cv(k);
  std::vector<double> host_scores(plan.k_block);
  for (std::size_t b0 = 0; b0 < k; b0 += plan.k_block) {
    const std::size_t kb = std::min(plan.k_block, k - b0);
    // Neighbour counts travel as 32-bit constants: half the constant-cache
    // footprint of size_t, and k < n always fits.
    std::vector<std::uint32_t> host_block(kb);
    for (std::size_t b = 0; b < kb; ++b) {
      host_block[b] = static_cast<std::uint32_t>(kgrid[b0 + b]);
    }
    spmd::ConstantBuffer<std::uint32_t> c_block =
        device.upload_constant<std::uint32_t>(host_block,
                                              "neighbor-grid-block");
    spmd::MemView<const std::uint32_t> ks = c_block.view();
    const bool first = b0 == 0;

    device.launch("knn_sweep_kblock", main_cfg,
                  [&, kb, first](const spmd::ThreadCtx& t) {
      const std::size_t j = t.global_idx();
      if (j >= n) {
        return;  // padding thread in the last block
      }
      std::size_t lo = 0;
      std::size_t hi = 0;
      Scalar sum_l{};
      Scalar sum_r{};
      if (first) {
        detail::knn_sweep_seed<Scalar>(j, lo, hi, sum_l, sum_r);
      } else {
        lo = lo_all[j];
        hi = hi_all[j];
        sum_l = sum_l_all[j];
        sum_r = sum_r_all[j];
      }
      detail::knn_sweep_resume<Scalar>(xs, ys, ks, j, lo, hi, sum_l, sum_r,
                                       [&](std::size_t b, Scalar sq) {
                                         resid_all[b * n + j] = sq;
                                       });
      lo_all[j] = lo;
      hi_all[j] = hi;
      sum_l_all[j] = sum_l;
      sum_r_all[j] = sum_r;
    });

    // Ordered fold: one thread per grid entry sums its residual row in
    // ascending observation order — bitwise the sequential host order.
    device.launch("knn_score_fold", spmd::LaunchConfig::cover(kb, tpb),
                  [&, kb](const spmd::ThreadCtx& t) {
      const std::size_t b = t.global_idx();
      if (b >= kb) {
        return;
      }
      double total = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        total += static_cast<double>(resid_all[b * n + j]);
      }
      scores_all[b] = total;
    });

    device.copy_to_host(std::span<double>(host_scores), d_scores);
    for (std::size_t b = 0; b < kb; ++b) {
      cv[b0 + b] = host_scores[b] / static_cast<double>(n);
    }
  }
  return cv;
}

}  // namespace

std::vector<std::size_t> default_neighbor_grid(std::size_t n,
                                               std::size_t max_size) {
  if (n < 2) {
    throw std::invalid_argument(
        "default_neighbor_grid: need n >= 2 observations");
  }
  if (max_size == 0) {
    throw std::invalid_argument("default_neighbor_grid: max_size must be > 0");
  }
  const std::size_t k_max = n - 1;
  std::vector<std::size_t> grid;
  grid.reserve(max_size);
  if (max_size == 1 || k_max == 1) {
    grid.push_back(1);
    return grid;
  }
  const double ratio = std::log(static_cast<double>(k_max)) /
                       static_cast<double>(max_size - 1);
  for (std::size_t j = 0; j < max_size; ++j) {
    const double value = std::exp(ratio * static_cast<double>(j));
    auto k = static_cast<std::size_t>(std::llround(value));
    k = std::clamp<std::size_t>(k, 1, k_max);
    if (grid.empty() || k > grid.back()) {
      grid.push_back(k);
    }
  }
  return grid;
}

std::vector<double> knn_cv_profile(const data::Dataset& data,
                                   std::span<const std::size_t> kgrid,
                                   Precision precision) {
  check_knn_inputs(data, kgrid, "knn_cv_profile");
  return precision == Precision::kFloat ? profile_sequential<float>(data, kgrid)
                                        : profile_sequential<double>(data, kgrid);
}

std::vector<double> knn_cv_profile_parallel(const data::Dataset& data,
                                            std::span<const std::size_t> kgrid,
                                            Precision precision,
                                            parallel::ThreadPool* pool) {
  check_knn_inputs(data, kgrid, "knn_cv_profile_parallel");
  return precision == Precision::kFloat
             ? profile_parallel<float>(data, kgrid, pool)
             : profile_parallel<double>(data, kgrid, pool);
}

std::vector<double> knn_cv_profile_tiled(const data::Dataset& data,
                                         std::span<const std::size_t> kgrid,
                                         Precision precision,
                                         HostTiling tiling,
                                         parallel::ThreadPool* pool) {
  check_knn_inputs(data, kgrid, "knn_cv_profile_tiled");
  return precision == Precision::kFloat
             ? profile_tiled<float>(data, kgrid, tiling, pool)
             : profile_tiled<double>(data, kgrid, tiling, pool);
}

std::vector<double> knn_cv_profile_naive(const data::Dataset& data,
                                         std::span<const std::size_t> kgrid,
                                         Precision precision) {
  check_knn_inputs(data, kgrid, "knn_cv_profile_naive");
  return precision == Precision::kFloat ? profile_naive<float>(data, kgrid)
                                        : profile_naive<double>(data, kgrid);
}

std::vector<double> knn_cv_profile_device(spmd::Device& device,
                                          const data::Dataset& data,
                                          std::span<const std::size_t> kgrid,
                                          KnnDeviceConfig config) {
  check_knn_inputs(data, kgrid, "knn_cv_profile_device");
  if (config.threads_per_block == 0) {
    throw std::invalid_argument(
        "knn_cv_profile_device: threads_per_block must be > 0");
  }
  return config.precision == Precision::kFloat
             ? profile_device<float>(device, data, kgrid, config)
             : profile_device<double>(device, data, kgrid, config);
}

std::size_t knn_estimated_streamed_bytes(std::size_t n, std::size_t k_block,
                                         Precision precision) {
  const std::size_t scalar =
      precision == Precision::kFloat ? sizeof(float) : sizeof(double);
  // x, y, sum_l, sum_r (Scalar) + lo, hi (size_t) + the residual block and
  // its per-entry double score totals.
  const std::size_t base =
      n * (4 * scalar + 2 * sizeof(std::size_t));
  return base + k_block * (n * scalar + sizeof(double));
}

KnnSelectionResult knn_selection_from_profile(
    std::span<const std::size_t> kgrid, std::vector<double> scores,
    std::string method) {
  if (kgrid.size() != scores.size() || kgrid.empty()) {
    throw std::invalid_argument(
        "knn_selection_from_profile: grid/scores size mismatch or empty");
  }
  std::size_t best = 0;
  for (std::size_t b = 1; b < scores.size(); ++b) {
    if (scores[b] < scores[best]) {  // strict <: smallest index wins ties
      best = b;
    }
  }
  KnnSelectionResult result;
  result.k = kgrid[best];
  result.cv_score = scores[best];
  result.grid.assign(kgrid.begin(), kgrid.end());
  result.scores = std::move(scores);
  result.method = std::move(method);
  return result;
}

KnnSelectionResult knn_select(const data::Dataset& data,
                              std::span<const std::size_t> kgrid,
                              Precision precision) {
  return knn_selection_from_profile(
      kgrid, knn_cv_profile(data, kgrid, precision), "knn-window-sweep");
}

KnnRegression::KnnRegression(const data::Dataset& data, std::size_t k)
    : sorted_(sort_dataset<double>(data.x, data.y)), k_(k) {
  if (data.empty()) {
    throw std::invalid_argument("KnnRegression: empty dataset");
  }
  if (k_ == 0 || k_ > data.size()) {
    throw std::invalid_argument(
        "KnnRegression: need 1 <= k <= n (got k = " + std::to_string(k_) +
        ", n = " + std::to_string(data.size()) + ")");
  }
}

double KnnRegression::predict(double x0) const {
  const std::vector<double>& xs = sorted_.x;
  const std::vector<double>& ys = sorted_.y;
  const std::size_t n = xs.size();
  // Two-pointer admission around the insertion point, then tie inclusion —
  // the query-point analogue of the LOOCV sweep body, with no self term.
  const auto it = std::lower_bound(xs.begin(), xs.end(), x0);
  std::size_t lo = static_cast<std::size_t>(it - xs.begin());
  std::size_t hi = lo;  // admitted window is [lo, hi)
  double sum = 0.0;
  while (hi - lo < k_ && (lo > 0 || hi < n)) {
    const bool has_left = lo > 0;
    const bool has_right = hi < n;
    if (has_left && (!has_right || x0 - xs[lo - 1] <= xs[hi] - x0)) {
      --lo;
      sum += ys[lo];
    } else {
      sum += ys[hi];
      ++hi;
    }
  }
  double radius = 0.0;
  if (lo < hi) {
    radius = std::max({0.0, x0 - xs[lo], xs[hi - 1] - x0});
  }
  while (lo > 0 && x0 - xs[lo - 1] <= radius) {
    --lo;
    sum += ys[lo];
  }
  while (hi < n && xs[hi] - x0 <= radius) {
    sum += ys[hi];
    ++hi;
  }
  return sum / static_cast<double>(hi - lo);
}

}  // namespace kreg
