#pragma once

#include <cstddef>

#include "core/selectors.hpp"

namespace kreg {

/// Options for iterated grid refinement.
struct RefineOptions {
  std::size_t k_per_round = 64;   ///< grid resolution per round
  std::size_t rounds = 3;         ///< zoom iterations
  double shrink = 0.2;            ///< new range = shrink × previous range
};

/// Iterated grid refinement — the paper's own answer to the k ≤ 2,048
/// constant-memory cap: "the user can run the optimization code multiple
/// times with progressively smaller ranges of possible bandwidths."
///
/// Round 1 searches the full grid range; each later round re-centres a new
/// grid of `k_per_round` values on the current winner with range shrunk by
/// `shrink` (clamped inside the original range and kept positive). The
/// effective resolution after r rounds is range·shrinkʳ⁻¹/k — e.g. three
/// 64-point rounds resolve like a single 1,600-point grid at a fraction of
/// the cost. Works with any grid-based Selector. Returns the final round's
/// result; `evaluations` accumulates over all rounds.
SelectionResult refine_select(const Selector& selector,
                              const data::Dataset& data,
                              const BandwidthGrid& initial,
                              const RefineOptions& options = {});

}  // namespace kreg
