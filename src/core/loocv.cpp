#include "core/loocv.hpp"

#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace kreg {

namespace {

void check_bandwidth(double h) {
  if (!(h > 0.0)) {
    throw std::invalid_argument("cv_score: bandwidth must be positive");
  }
}

/// Squared LOO residual of observation i, or 0 when M(X_i) = 0.
double squared_residual(const data::Dataset& data, std::size_t i, double h,
                        KernelType kernel) {
  const LooPrediction p = loo_predict(data, i, h, kernel);
  if (!p.valid) {
    return 0.0;
  }
  const double e = data.y[i] - p.value;
  return e * e;
}

}  // namespace

LooPrediction loo_predict(const data::Dataset& data, std::size_t i, double h,
                          KernelType kernel) {
  const std::size_t n = data.size();
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t l = 0; l < n; ++l) {
    if (l == i) {
      continue;  // leave-one-out
    }
    const double w = kernel_value(kernel, (data.x[i] - data.x[l]) / h);
    numerator += data.y[l] * w;
    denominator += w;
  }
  LooPrediction out;
  if (denominator != 0.0) {
    out.value = numerator / denominator;
    out.valid = true;
  }
  return out;
}

std::vector<LooPrediction> loo_predict_all(const data::Dataset& data, double h,
                                           KernelType kernel) {
  check_bandwidth(h);
  std::vector<LooPrediction> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = loo_predict(data, i, h, kernel);
  }
  return out;
}

double cv_score(const data::Dataset& data, double h, KernelType kernel) {
  check_bandwidth(h);
  const std::size_t n = data.size();
  if (n == 0) {
    throw std::invalid_argument("cv_score: empty dataset");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += squared_residual(data, i, h, kernel);
  }
  return acc / static_cast<double>(n);
}

double cv_score_parallel(const data::Dataset& data, double h,
                         KernelType kernel, parallel::ThreadPool* pool) {
  check_bandwidth(h);
  const std::size_t n = data.size();
  if (n == 0) {
    throw std::invalid_argument("cv_score_parallel: empty dataset");
  }
  const double total = parallel::parallel_reduce<double>(
      n, 0.0,
      [&](std::size_t i) { return squared_residual(data, i, h, kernel); },
      [](double a, double b) { return a + b; }, pool);
  return total / static_cast<double>(n);
}

}  // namespace kreg
