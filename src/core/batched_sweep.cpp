#include "core/batched_sweep.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/detail/batched_lanes.hpp"
#include "core/validate_grid.hpp"
#include "core/window_sweep.hpp"
#include "parallel/parallel_for.hpp"
#include "sort/two_key.hpp"

namespace kreg {

const char* to_string(SigmaPolicy policy) {
  switch (policy) {
    case SigmaPolicy::kNone:
      return "none";
    case SigmaPolicy::kLength:
      return "length";
    case SigmaPolicy::kPositionLength:
      return "position-length";
  }
  return "unknown";
}

SigmaPolicy parse_sigma_policy(std::string_view text) {
  if (text == "none") {
    return SigmaPolicy::kNone;
  }
  if (text == "length") {
    return SigmaPolicy::kLength;
  }
  if (text == "position-length") {
    return SigmaPolicy::kPositionLength;
  }
  throw std::invalid_argument(
      "parse_sigma_policy: '" + std::string(text) +
      "' is not a sigma policy (expected none, length, or position-length)");
}

std::size_t parse_prefetch_distance(std::string_view text) {
  if (text.empty()) {
    throw std::invalid_argument(
        "parse_prefetch_distance: empty input (expected a base-10 step "
        "count, 0 = off)");
  }
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument(
          "parse_prefetch_distance: '" + std::string(text) +
          "' is not a non-negative base-10 step count (0 = off)");
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
    if (value > kMaxPrefetchDistance) {
      throw std::invalid_argument(
          "parse_prefetch_distance: '" + std::string(text) +
          "' exceeds the maximum distance of " +
          std::to_string(kMaxPrefetchDistance));
    }
  }
  return value;
}

std::size_t resolve_prefetch_distance(std::size_t requested) {
  if (requested == kPrefetchFromEnv) {
    const char* env = std::getenv("KREG_PREFETCH_DIST");
    if (env == nullptr || *env == '\0') {
      return 0;
    }
    return parse_prefetch_distance(env);
  }
  if (requested > kMaxPrefetchDistance) {
    throw std::invalid_argument(
        "prefetch_distance must be at most " +
        std::to_string(kMaxPrefetchDistance) + " (got " +
        std::to_string(requested) + ")");
  }
  return requested;
}

std::size_t resolve_lane_width(std::size_t requested) {
  if (requested == 0) {
    return kDefaultLaneWidth;
  }
  if (requested == 1 || requested == 4 || requested == 8 || requested == 16) {
    return requested;
  }
  throw std::invalid_argument("lane_width must be 0 (auto), 1, 4, 8, or 16 (got " +
                              std::to_string(requested) + ")");
}

template <class Scalar>
AdmissionWindows admission_windows(std::span<const Scalar> xs_sorted,
                                   Scalar h_max) {
  const std::size_t n = xs_sorted.size();
  AdmissionWindows win;
  win.lo.resize(n);
  win.length.resize(n);
  // Both window bounds at h_max are monotone in pos, so one two-pointer
  // pass computes every (lo, length) — the same O(n) discipline as the
  // sweep itself, using its exact admission predicate.
  std::size_t lo = 0;
  std::size_t hi = 0;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const Scalar x = xs_sorted[pos];
    while (x - xs_sorted[lo] > h_max) {
      ++lo;
    }
    if (hi < pos) {
      hi = pos;
    }
    while (hi + 1 < n && xs_sorted[hi + 1] - x <= h_max) {
      ++hi;
    }
    win.lo[pos] = lo;
    win.length[pos] = hi - lo + 1;
  }
  return win;
}

template AdmissionWindows admission_windows<float>(std::span<const float>,
                                                   float);
template AdmissionWindows admission_windows<double>(std::span<const double>,
                                                    double);

template <class Scalar>
std::vector<std::size_t> admission_window_lengths(
    std::span<const Scalar> xs_sorted, Scalar h_max) {
  return admission_windows<Scalar>(xs_sorted, h_max).length;
}

template std::vector<std::size_t> admission_window_lengths<float>(
    std::span<const float>, float);
template std::vector<std::size_t> admission_window_lengths<double>(
    std::span<const double>, double);

std::vector<std::uint32_t> sigma_batch_order(
    std::span<const std::size_t> lengths, std::span<const std::size_t> los,
    std::size_t begin, std::size_t end, std::size_t scope,
    SigmaPolicy policy, std::size_t position_bucket) {
  const std::size_t count = end - begin;
  std::vector<std::uint32_t> order(count);
  std::iota(order.begin(), order.end(), std::uint32_t{0});
  if (policy == SigmaPolicy::kNone || count == 0) {
    return order;
  }
  if (policy == SigmaPolicy::kPositionLength && los.size() < end) {
    throw std::invalid_argument(
        "sigma_batch_order: position-length policy needs window lo indices "
        "covering [begin, end)");
  }
  const std::size_t bucket = position_bucket == 0 ? 1 : position_bucket;
  const std::size_t step = scope == 0 ? count : scope;
  std::vector<std::uint32_t> scratch;
  for (std::size_t s0 = 0; s0 < count; s0 += step) {
    const std::size_t s1 = std::min(s0 + step, count);
    if (policy == SigmaPolicy::kLength) {
      // Stable and descending: equal-length rows keep ascending order, so
      // the permutation is deterministic.
      std::stable_sort(order.begin() + static_cast<std::ptrdiff_t>(s0),
                       order.begin() + static_cast<std::ptrdiff_t>(s1),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return lengths[begin + a] > lengths[begin + b];
                       });
    } else {
      // Two-key: position bucket ascending (gather locality), length
      // descending inside a bucket (small padded tails), stable (rows
      // equal under both keys keep ascending order — deterministic).
      sort::two_key_argsort(
          std::span<std::uint32_t>(order.data() + s0, s1 - s0),
          [&](std::uint32_t r) { return los[begin + r] / bucket; },
          [&](std::uint32_t r) { return lengths[begin + r]; }, scratch);
    }
  }
  return order;
}

std::vector<std::uint32_t> sigma_batch_order(
    std::span<const std::size_t> lengths, std::size_t begin, std::size_t end,
    std::size_t scope, bool sigma_sort) {
  return sigma_batch_order(
      lengths, {}, begin, end, scope,
      sigma_sort ? SigmaPolicy::kLength : SigmaPolicy::kNone, 1);
}

namespace {

/// The batched mirror of window_sweep.cpp's profile_tiled: same tiling
/// defaults, same tile-order combination, same per-tile ascending-row fold
/// into the accumulator — only the per-row sweep is replaced by σ-sorted
/// C-wide lane batches staging their residuals in a tile-local buffer.
/// Because the fold visits buffered residuals in exactly the (row, b)
/// order the scalar tiled kernel adds them, the profile is bitwise
/// identical to the scalar one for any lane width, σ policy, and prefetch
/// distance.
template <class Scalar, std::size_t C>
std::vector<double> profile_batched(const data::Dataset& data,
                                    std::span<const double> grid,
                                    KernelType kernel, SigmaPolicy sigma,
                                    std::size_t prefetch, HostTiling tiling,
                                    parallel::ThreadPool* pool,
                                    BatchRunStats* stats) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const SweepPolynomial poly = sweep_polynomial(kernel);
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }
  const std::size_t n_block = tiling.n_block != 0 ? tiling.n_block : 2048;
  const std::size_t k_block = tiling.k_block != 0
                                  ? std::min(tiling.k_block, k)
                                  : std::min<std::size_t>(64, k);

  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  const std::vector<Scalar> host_grid(grid.begin(), grid.end());
  const std::span<const Scalar> xs(sorted.x);
  const std::span<const Scalar> ys(sorted.y);

  // σ keys: admission-window (lo, length) at h_max, shared by every tile.
  const AdmissionWindows win =
      admission_windows<Scalar>(xs, host_grid.back());

  const std::size_t tiles = (n + n_block - 1) / n_block;
  std::vector<std::vector<double>> partials(tiles,
                                            std::vector<double>(k, 0.0));
  std::vector<BatchRunStats> tile_stats(stats != nullptr ? tiles : 0);

  parallel::parallel_for(
      tiles,
      [&](std::size_t tile) {
        const std::size_t begin = tile * n_block;
        const std::size_t nb = std::min(n_block, n - begin);
        std::vector<double>& acc = partials[tile];
        BatchRunStats* tstats =
            stats != nullptr ? &tile_stats[tile] : nullptr;

        // Batch membership: the tile is the σ-scope; consecutive C rows of
        // the (possibly σ-sorted) order form one batch, the last padded.
        const std::vector<std::uint32_t> order = sigma_batch_order(
            win.length, win.lo, begin, begin + nb, nb, sigma,
            sigma_position_bucket(sizeof(Scalar)));
        const std::size_t nbatches = (nb + C - 1) / C;
        std::vector<detail::LaneBatch<Scalar, C>> batches(nbatches);
        for (std::size_t g = 0; g < nbatches; ++g) {
          detail::LaneBatch<Scalar, C>& st = batches[g];
          st.lanes = std::min(C, nb - g * C);
          for (std::size_t l = 0; l < st.lanes; ++l) {
            st.pos[l] = begin + order[g * C + l];
          }
          detail::batch_seed(st, xs, ys);
        }

        // Residuals staged per (row, bandwidth-in-block) so the fold below
        // can run in ascending row order regardless of batch order.
        std::vector<Scalar> buf(nb * k_block);

        for (std::size_t b0 = 0; b0 < k; b0 += k_block) {
          const std::size_t kb = std::min(k_block, k - b0);
          const std::span<const Scalar> hs(host_grid.data() + b0, kb);
          for (detail::LaneBatch<Scalar, C>& st : batches) {
            detail::batch_resume(
                st, xs, ys, hs, poly,
                [&](std::size_t b, std::size_t l, Scalar sq) {
                  buf[(st.pos[l] - begin) * kb + b] = sq;
                },
                prefetch, tstats);
          }
          for (std::size_t r = 0; r < nb; ++r) {
            for (std::size_t b = 0; b < kb; ++b) {
              acc[b0 + b] += static_cast<double>(buf[r * kb + b]);
            }
          }
        }
      },
      pool);

  std::vector<double> totals(k, 0.0);
  for (const std::vector<double>& partial : partials) {
    for (std::size_t b = 0; b < k; ++b) {
      totals[b] += partial[b];
    }
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  if (stats != nullptr) {
    for (const BatchRunStats& ts : tile_stats) {
      *stats += ts;
    }
  }
  return totals;
}

}  // namespace

std::vector<double> window_cv_profile_batched(const data::Dataset& data,
                                              std::span<const double> grid,
                                              KernelType kernel,
                                              Precision precision,
                                              BatchedSweep batched,
                                              HostTiling tiling,
                                              parallel::ThreadPool* pool,
                                              BatchRunStats* stats) {
  if (data.empty()) {
    throw std::invalid_argument("window_cv_profile_batched: empty dataset");
  }
  validate_bandwidth_grid(grid, "window_cv_profile_batched");
  if (!is_sweepable(kernel)) {
    throw std::invalid_argument(
        "window_cv_profile_batched: kernel '" +
        std::string(to_string(kernel)) +
        "' is not supported by the window sweep; use the naive path");
  }
  const std::size_t lane_width = resolve_lane_width(batched.lane_width);
  const std::size_t prefetch =
      resolve_prefetch_distance(batched.prefetch_distance);
  if (lane_width == 4) {
    // The C = 4 narrow batch loses to the scalar sweep on every measured
    // host (ROADMAP: the transpose fast path cannot amortize 4-lane
    // shuffles), so an explicit lane_width = 4 request takes the scalar
    // tiled sweep. Bitwise identical by the batched == scalar parity
    // contract; the rerouting is visible only in the stats ledger.
    if (stats != nullptr) {
      ++stats->scalar_routed;
    }
    return window_cv_profile_tiled(data, grid, kernel, precision, tiling,
                                   pool);
  }
  return detail::with_lane_width(lane_width, [&](auto width) {
    constexpr std::size_t C = decltype(width)::value;
    return precision == Precision::kFloat
               ? profile_batched<float, C>(data, grid, kernel, batched.sigma,
                                           prefetch, tiling, pool, stats)
               : profile_batched<double, C>(data, grid, kernel, batched.sigma,
                                            prefetch, tiling, pool, stats);
  });
}

}  // namespace kreg
