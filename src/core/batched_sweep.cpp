#include "core/batched_sweep.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/detail/batched_lanes.hpp"
#include "core/validate_grid.hpp"
#include "parallel/parallel_for.hpp"

namespace kreg {

std::size_t resolve_lane_width(std::size_t requested) {
  if (requested == 0) {
    return kDefaultLaneWidth;
  }
  if (requested == 1 || requested == 4 || requested == 8 || requested == 16) {
    return requested;
  }
  throw std::invalid_argument("lane_width must be 0 (auto), 1, 4, 8, or 16 (got " +
                              std::to_string(requested) + ")");
}

template <class Scalar>
std::vector<std::size_t> admission_window_lengths(
    std::span<const Scalar> xs_sorted, Scalar h_max) {
  const std::size_t n = xs_sorted.size();
  std::vector<std::size_t> lengths(n);
  // Both window bounds at h_max are monotone in pos, so one two-pointer
  // pass computes every length — the same O(n) discipline as the sweep
  // itself, using its exact admission predicate.
  std::size_t lo = 0;
  std::size_t hi = 0;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const Scalar x = xs_sorted[pos];
    while (x - xs_sorted[lo] > h_max) {
      ++lo;
    }
    if (hi < pos) {
      hi = pos;
    }
    while (hi + 1 < n && xs_sorted[hi + 1] - x <= h_max) {
      ++hi;
    }
    lengths[pos] = hi - lo + 1;
  }
  return lengths;
}

template std::vector<std::size_t> admission_window_lengths<float>(
    std::span<const float>, float);
template std::vector<std::size_t> admission_window_lengths<double>(
    std::span<const double>, double);

std::vector<std::uint32_t> sigma_batch_order(
    std::span<const std::size_t> lengths, std::size_t begin, std::size_t end,
    std::size_t scope, bool sigma_sort) {
  const std::size_t count = end - begin;
  std::vector<std::uint32_t> order(count);
  std::iota(order.begin(), order.end(), std::uint32_t{0});
  if (!sigma_sort || count == 0) {
    return order;
  }
  const std::size_t step = scope == 0 ? count : scope;
  for (std::size_t s0 = 0; s0 < count; s0 += step) {
    const std::size_t s1 = std::min(s0 + step, count);
    // Stable and descending: equal-length rows keep ascending order, so
    // the permutation is deterministic.
    std::stable_sort(order.begin() + static_cast<std::ptrdiff_t>(s0),
                     order.begin() + static_cast<std::ptrdiff_t>(s1),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return lengths[begin + a] > lengths[begin + b];
                     });
  }
  return order;
}

namespace {

/// The batched mirror of window_sweep.cpp's profile_tiled: same tiling
/// defaults, same tile-order combination, same per-tile ascending-row fold
/// into the accumulator — only the per-row sweep is replaced by σ-sorted
/// C-wide lane batches staging their residuals in a tile-local buffer.
/// Because the fold visits buffered residuals in exactly the (row, b)
/// order the scalar tiled kernel adds them, the profile is bitwise
/// identical to the scalar one for any lane width and σ setting.
template <class Scalar, std::size_t C>
std::vector<double> profile_batched(const data::Dataset& data,
                                    std::span<const double> grid,
                                    KernelType kernel, bool sigma_sort,
                                    HostTiling tiling,
                                    parallel::ThreadPool* pool) {
  const std::size_t n = data.size();
  const std::size_t k = grid.size();
  const SweepPolynomial poly = sweep_polynomial(kernel);
  if (pool == nullptr) {
    pool = &parallel::ThreadPool::global();
  }
  const std::size_t n_block = tiling.n_block != 0 ? tiling.n_block : 2048;
  const std::size_t k_block = tiling.k_block != 0
                                  ? std::min(tiling.k_block, k)
                                  : std::min<std::size_t>(64, k);

  const SortedDataset<Scalar> sorted = sort_dataset<Scalar>(data.x, data.y);
  const std::vector<Scalar> host_grid(grid.begin(), grid.end());
  const std::span<const Scalar> xs(sorted.x);
  const std::span<const Scalar> ys(sorted.y);

  // σ-sort key: admission-window length at h_max, shared by every tile.
  const std::vector<std::size_t> lengths =
      admission_window_lengths<Scalar>(xs, host_grid.back());

  const std::size_t tiles = (n + n_block - 1) / n_block;
  std::vector<std::vector<double>> partials(tiles,
                                            std::vector<double>(k, 0.0));

  parallel::parallel_for(
      tiles,
      [&](std::size_t tile) {
        const std::size_t begin = tile * n_block;
        const std::size_t nb = std::min(n_block, n - begin);
        std::vector<double>& acc = partials[tile];

        // Batch membership: the tile is the σ-scope; consecutive C rows of
        // the (possibly σ-sorted) order form one batch, the last padded.
        const std::vector<std::uint32_t> order =
            sigma_batch_order(lengths, begin, begin + nb, nb, sigma_sort);
        const std::size_t nbatches = (nb + C - 1) / C;
        std::vector<detail::LaneBatch<Scalar, C>> batches(nbatches);
        for (std::size_t g = 0; g < nbatches; ++g) {
          detail::LaneBatch<Scalar, C>& st = batches[g];
          st.lanes = std::min(C, nb - g * C);
          for (std::size_t l = 0; l < st.lanes; ++l) {
            st.pos[l] = begin + order[g * C + l];
          }
          detail::batch_seed(st, xs, ys);
        }

        // Residuals staged per (row, bandwidth-in-block) so the fold below
        // can run in ascending row order regardless of batch order.
        std::vector<Scalar> buf(nb * k_block);

        for (std::size_t b0 = 0; b0 < k; b0 += k_block) {
          const std::size_t kb = std::min(k_block, k - b0);
          const std::span<const Scalar> hs(host_grid.data() + b0, kb);
          for (detail::LaneBatch<Scalar, C>& st : batches) {
            detail::batch_resume(
                st, xs, ys, hs, poly, [&](std::size_t b, std::size_t l,
                                          Scalar sq) {
                  buf[(st.pos[l] - begin) * kb + b] = sq;
                });
          }
          for (std::size_t r = 0; r < nb; ++r) {
            for (std::size_t b = 0; b < kb; ++b) {
              acc[b0 + b] += static_cast<double>(buf[r * kb + b]);
            }
          }
        }
      },
      pool);

  std::vector<double> totals(k, 0.0);
  for (const std::vector<double>& partial : partials) {
    for (std::size_t b = 0; b < k; ++b) {
      totals[b] += partial[b];
    }
  }
  for (double& total : totals) {
    total /= static_cast<double>(n);
  }
  return totals;
}

}  // namespace

std::vector<double> window_cv_profile_batched(const data::Dataset& data,
                                              std::span<const double> grid,
                                              KernelType kernel,
                                              Precision precision,
                                              BatchedSweep batched,
                                              HostTiling tiling,
                                              parallel::ThreadPool* pool) {
  if (data.empty()) {
    throw std::invalid_argument("window_cv_profile_batched: empty dataset");
  }
  validate_bandwidth_grid(grid, "window_cv_profile_batched");
  if (!is_sweepable(kernel)) {
    throw std::invalid_argument(
        "window_cv_profile_batched: kernel '" +
        std::string(to_string(kernel)) +
        "' is not supported by the window sweep; use the naive path");
  }
  const std::size_t lane_width = resolve_lane_width(batched.lane_width);
  return detail::with_lane_width(lane_width, [&](auto width) {
    constexpr std::size_t C = decltype(width)::value;
    return precision == Precision::kFloat
               ? profile_batched<float, C>(data, grid, kernel,
                                           batched.sigma_sort, tiling, pool)
               : profile_batched<double, C>(data, grid, kernel,
                                            batched.sigma_sort, tiling, pool);
  });
}

}  // namespace kreg
