#pragma once

#include <span>
#include <vector>

#include "core/grid.hpp"
#include "core/kernels.hpp"
#include "core/multivariate.hpp"
#include "core/sorted_sweep.hpp"
#include "parallel/thread_pool.hpp"

namespace kreg {

/// The paper's sorting-based sweep generalized to multivariate product
/// kernels along a bandwidth *ray* — the natural multivariate reading of
/// §III's "evenly-spaced grid or matrix in multivariate contexts".
///
/// Fix a positive per-dimension ratio vector r and search bandwidths
/// h(c) = c·r over an ascending grid of scales c. A product kernel admits
/// observation l at scale c iff |d_j| ≤ c·r_j for every j, i.e. iff the
/// scaled Chebyshev distance ρ = max_j |d_j|/r_j satisfies ρ ≤ c — so the
/// admitted sets are *nested in c* exactly as in the univariate case, and
/// one sort of each observation's ρ row serves every scale.
///
/// The weight itself is a polynomial in 1/c: with ρ_j = |d_j|/r_j and the
/// univariate kernel K(u) = Σ_m c_m |u|^m,
///
///   Π_j K(ρ_j/c) = Π_j Σ_m c_m ρ_j^m c^(−m)
///
/// is the convolution of the per-dimension coefficient vectors — a degree
/// ≤ p·max_power polynomial in c⁻¹ whose pairwise coefficients are
/// accumulated into moment sums at admission time. The self term reduces to
/// K(0)^p = c₀^p at power 0, subtracted analytically. Cost per observation:
/// O(n log n + n·p·deg² + k·deg) for all k scales.
///
/// Ray search complements the Cartesian search in multivariate.hpp: the ray
/// fixes relative smoothing across dimensions (e.g. proportional to each
/// dimension's domain — `default_ray_ratios`) and optimizes the overall
/// scale with univariate-grid-search cost.

/// Default ratios: r_j = domain of dimension j, so scales c play the role
/// the bandwidth plays in the univariate default grid (c = 1 spans each
/// dimension's full range). A constant dimension (zero domain) is clamped
/// to the largest positive domain (1.0 when every dimension is constant):
/// its distances are all zero, so any positive ratio admits it everywhere
/// and the clamp only keeps the ratio-positivity contract intact.
std::vector<double> default_ray_ratios(const data::MDataset& data);

/// CV profile over the ascending scale grid for h(c) = c·r.
/// Requires a sweepable kernel, positive ratios (one per dimension), and a
/// positive ascending scale grid.
std::vector<double> multi_ray_cv_profile(const data::MDataset& data,
                                         std::span<const double> ratios,
                                         std::span<const double> scales,
                                         KernelType kernel);

/// Parallel variant (observations across the pool; deterministic).
std::vector<double> multi_ray_cv_profile_parallel(
    const data::MDataset& data, std::span<const double> ratios,
    std::span<const double> scales, KernelType kernel,
    parallel::ThreadPool* pool = nullptr);

/// Window-sweep ray profile: one global sort per ray, not one per row.
///
/// Sort the observations once by the scaled first coordinate z = x_0 / r_0.
/// Because ρ = max_j |d_j|/r_j ≥ |d_0|/r_0 = |Δz|, the two-pointer window
/// {l : |z_l − z_i| ≤ c} over the sorted coordinate is a *superset* of the
/// admitted set at every scale c, and — like every admitted set — it is
/// nested in c. Each candidate entering the window is filtered by the
/// remaining dimensions exactly once: its true admission scale ρ is
/// computed, its convolved polynomial coefficients are parked in the
/// bucket of the first grid scale ≥ ρ (never a scale already swept, since
/// ρ ≥ |Δz| > previous c), and each scale drains its bucket into the
/// moment sums before the usual sweep-polynomial recombination. Candidates
/// with ρ beyond the grid are dropped without coefficient work.
///
/// Total cost: O(n log n) for the one global sort plus
/// O(n·(k·deg + superset·p·deg²)) for the sweeps — versus the per-row path's
/// O(n² log n) sorting bill on top of the same admission work. Matches
/// multi_ray_cv_profile to floating-point recombination error.
std::vector<double> multi_ray_cv_profile_window(const data::MDataset& data,
                                                std::span<const double> ratios,
                                                std::span<const double> scales,
                                                KernelType kernel);

/// Same window profile with observations distributed across a thread pool
/// (the global sort runs once, on the calling thread; deterministic).
std::vector<double> multi_ray_cv_profile_window_parallel(
    const data::MDataset& data, std::span<const double> ratios,
    std::span<const double> scales, KernelType kernel,
    parallel::ThreadPool* pool = nullptr);

/// Selects the best scale on the ray and returns the bandwidth vector.
/// `algorithm` routes between the window sweep (default) and the per-row
/// sort (the paper-faithful ablation baseline).
MultiSelectionResult multi_ray_select(
    const data::MDataset& data, std::span<const double> ratios,
    const BandwidthGrid& scales,
    KernelType kernel = KernelType::kEpanechnikov,
    SweepAlgorithm algorithm = SweepAlgorithm::kWindow);

}  // namespace kreg
