#include "core/optimizers.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace kreg {

namespace {

void check_bracket(double lo, double hi) {
  if (!(lo < hi)) {
    throw std::invalid_argument("optimizer: bracket requires lo < hi");
  }
}

constexpr double kInvPhi = 0.6180339887498949;  // 1/φ

}  // namespace

OptimizeResult golden_section(const std::function<double(double)>& f,
                              double lo, double hi,
                              const OptimizeOptions& options) {
  check_bracket(lo, hi);
  OptimizeResult result;

  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  result.evaluations = 2;

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (b - a <= options.x_tol) {
      result.converged = true;
      break;
    }
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
    ++result.evaluations;
  }
  if (f1 <= f2) {
    result.x = x1;
    result.fx = f1;
  } else {
    result.x = x2;
    result.fx = f2;
  }
  return result;
}

OptimizeResult brent(const std::function<double(double)>& f, double lo,
                     double hi, const OptimizeOptions& options) {
  check_bracket(lo, hi);
  OptimizeResult result;

  // Brent (1973), as in R's optimize(): track the best point x, the
  // second-best w, and the previous w (v); try parabolic interpolation
  // through (x, w, v), falling back to golden section when the parabola
  // step is unacceptable.
  const double eps = std::sqrt(std::numeric_limits<double>::epsilon());
  double a = lo;
  double b = hi;
  double x = a + kInvPhi * (b - a);
  double w = x;
  double v = x;
  double fx = f(x);
  double fw = fx;
  double fv = fx;
  result.evaluations = 1;
  double d = 0.0;  // last step
  double e = 0.0;  // step before last

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const double mid = 0.5 * (a + b);
    const double tol1 = eps * std::abs(x) + options.x_tol / 3.0;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - mid) <= tol2 - 0.5 * (b - a)) {
      result.converged = true;
      break;
    }

    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Parabola through x, w, v.
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) {
        p = -p;
      }
      q = std::abs(q);
      const double e_prev = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * e_prev) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u_try = x + d;
        if (u_try - a < tol2 || b - u_try < tol2) {
          d = x < mid ? tol1 : -tol1;
        }
        use_golden = false;
      }
    }
    if (use_golden) {
      e = x < mid ? b - x : a - x;
      d = (1.0 - kInvPhi) * e;
    }

    const double u =
        std::abs(d) >= tol1 ? x + d : x + (d > 0.0 ? tol1 : -tol1);
    const double fu = f(u);
    ++result.evaluations;

    if (fu <= fx) {
      if (u < x) {
        b = x;
      } else {
        a = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }

  result.x = x;
  result.fx = fx;
  return result;
}

OptimizeResult multistart(
    const std::function<double(double)>& f, double lo, double hi,
    std::size_t starts,
    const std::function<OptimizeResult(const std::function<double(double)>&,
                                       double, double,
                                       const OptimizeOptions&)>& method,
    const OptimizeOptions& options) {
  check_bracket(lo, hi);
  if (starts == 0) {
    throw std::invalid_argument("multistart: need at least one start");
  }
  OptimizeResult best;
  best.fx = std::numeric_limits<double>::infinity();
  const double width = (hi - lo) / static_cast<double>(starts);
  for (std::size_t s = 0; s < starts; ++s) {
    const double sub_lo = lo + width * static_cast<double>(s);
    const double sub_hi = s + 1 == starts ? hi : sub_lo + width;
    const OptimizeResult r = method(f, sub_lo, sub_hi, options);
    best.evaluations += r.evaluations;
    if (r.fx < best.fx) {
      best.x = r.x;
      best.fx = r.fx;
      best.converged = r.converged;
    }
  }
  return best;
}

}  // namespace kreg
