#pragma once

#include "core/selectors.hpp"

namespace kreg {

/// Leave-one-out prediction at X_i from the local-linear estimator fitted
/// without observation i. Mirrors loo_predict() for the local-constant
/// case; falls back to the weighted mean when the local design is
/// degenerate.
LooPrediction loo_predict_local_linear(
    const data::Dataset& data, std::size_t i, double h,
    KernelType kernel = KernelType::kEpanechnikov);

/// CV_ll(h): the least-squares LOO-CV criterion with the local-linear
/// smoother in place of Nadaraya–Watson (Li & Racine's CV for the local
/// linear estimator). O(n²) per bandwidth; the sorting trick does not apply
/// directly because the weighted moments involve signed distances.
double cv_score_local_linear(const data::Dataset& data, double h,
                             KernelType kernel = KernelType::kEpanechnikov);

/// Grid search over CV_ll — bandwidth selection for the local-linear
/// estimator (extension: the paper fixes the estimator to Nadaraya–Watson).
class LocalLinearGridSelector final : public Selector {
 public:
  explicit LocalLinearGridSelector(
      KernelType kernel = KernelType::kEpanechnikov,
      parallel::ThreadPool* pool = nullptr, bool parallel = false)
      : kernel_(kernel), pool_(pool), parallel_(parallel) {}

  SelectionResult select(const data::Dataset& data,
                         const BandwidthGrid& grid) const override;
  std::string name() const override;

 private:
  KernelType kernel_;
  parallel::ThreadPool* pool_;
  bool parallel_;
};

}  // namespace kreg
