#pragma once

#include <span>

#include "core/kernels.hpp"
#include "core/types.hpp"
#include "data/dataset.hpp"

namespace kreg {

/// Rule-of-thumb bandwidth selectors — the ad hoc shortcuts the paper's
/// introduction says practitioners fall back on "in place of the optimal
/// bandwidth" because cross-validation is expensive. Provided both as
/// honest baselines for the examples/benches and as cheap initializers for
/// the grid-refinement loop. All run in O(n log n) (one sort for the IQR).

/// Silverman's (1986) rule for kernel *density* estimation:
///   h = 0.9 · min(σ̂, IQR/1.349) · n^(−1/5),
/// rescaled to the target kernel via the canonical-bandwidth ratio so that,
/// e.g., the Epanechnikov value is comparable to the Gaussian one.
double silverman_bandwidth(std::span<const double> xs,
                           KernelType kernel = KernelType::kGaussian);

/// Scott's (1992) rule: h = 1.06 · σ̂ · n^(−1/5), same kernel rescaling.
double scott_bandwidth(std::span<const double> xs,
                       KernelType kernel = KernelType::kGaussian);

/// Rule-of-thumb selector for *regression*: applies the chosen density rule
/// to the X sample. This is exactly the kind of proxy the paper warns
/// about — it ignores Y entirely — but it is what much applied work uses.
enum class ThumbRule { kSilverman, kScott };

SelectionResult rule_of_thumb_select(
    const data::Dataset& data, ThumbRule rule = ThumbRule::kSilverman,
    KernelType kernel = KernelType::kEpanechnikov);

}  // namespace kreg
