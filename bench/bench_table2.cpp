// Reproduces Table II: run times by number of bandwidths calculated.
// Panel A: the sequential sorting-based program (Program 3).
// Panel B: the SPMD device program (Program 4).
//
// Expected shape (paper §V): for the sequential program the bandwidth count
// matters at small n (the O(k) per-observation sweep tail is visible) but
// is minor at large n where the O(n log n) sort dominates; the device
// program shows no appreciable slowdown in k at any n. k never exceeds n,
// and never exceeds the 2,048 constant-memory cap.
#include <cstdio>
#include <functional>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::bench::Table;

void run_panel(const char* title, const std::vector<std::size_t>& sizes,
               const std::vector<std::size_t>& bandwidths, std::size_t reps,
               const std::function<void(const kreg::data::Dataset&,
                                        const kreg::BandwidthGrid&)>& run) {
  kreg::bench::banner(title);

  // One dataset per sample size, shared across the k sweep (as in the
  // paper, where the data are fixed while k varies).
  kreg::rng::Stream stream(404);
  std::vector<kreg::data::Dataset> datasets;
  datasets.reserve(sizes.size());
  for (std::size_t n : sizes) {
    datasets.push_back(kreg::data::paper_dgp(n, stream));
  }

  std::vector<std::string> headers = {"bandwidths"};
  for (std::size_t n : sizes) {
    headers.push_back("n=" + std::to_string(n));
  }
  Table table(headers, 12);

  for (std::size_t k : bandwidths) {
    std::vector<std::string> row = {std::to_string(k)};
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      if (k > sizes[s]) {
        row.push_back("-");  // paper leaves k > n cells blank
        continue;
      }
      const kreg::BandwidthGrid grid =
          kreg::BandwidthGrid::default_for(datasets[s], k);
      const double median = kreg::bench::time_median(
          [&] { run(datasets[s], grid); }, reps);
      row.push_back(Table::fmt_seconds(median));
    }
    table.add_row(row);
  }
  table.print();
}

}  // namespace

int main() {
  const std::size_t reps = kreg::bench::repetitions();
  const std::vector<std::size_t> sizes = kreg::bench::sample_sizes();
  const std::vector<std::size_t> bandwidths = kreg::bench::bandwidth_counts();

  std::printf("reps=%zu (median reported)%s\n", reps,
              kreg::bench::full_mode()
                  ? ", FULL mode"
                  : "; set KREG_BENCH_FULL=1 for n up to 20,000");

  const kreg::SortedGridSelector program3(kreg::KernelType::kEpanechnikov,
                                          kreg::Precision::kFloat);
  run_panel("TABLE II PANEL A — Sequential sorted grid search (s)", sizes,
            bandwidths, reps,
            [&](const kreg::data::Dataset& d, const kreg::BandwidthGrid& g) {
              (void)program3.select(d, g);
            });

  kreg::spmd::Device device;
  kreg::SpmdSelectorConfig cfg;  // paper defaults: float, 512 tpb
  const kreg::SpmdGridSelector program4(device, cfg);
  run_panel("TABLE II PANEL B — SPMD device grid search (s)", sizes,
            bandwidths, reps,
            [&](const kreg::data::Dataset& d, const kreg::BandwidthGrid& g) {
              (void)program4.select(d, g);
            });
  return 0;
}
