// Reproduces Figure 1 and Table I: run times of the four programs by
// sample size (k = 50 bandwidths, the paper's configuration).
//
//   Program 1  "Racine & Hayfield"  numerical optimizer over the naive
//                                   O(n²) CV objective, single thread
//   Program 2  "Multicore R"        same optimizer, objective parallelized
//                                   across the host pool
//   Program 3  "Sequential C"       sorting-based grid search, one core
//   Program 4  "CUDA on GPU"        sorting-based grid search on the
//                                   simulated SPMD device
//
// Expected shape (paper §V): 1 slowest, then 2, then 3, then 4 at large n;
// sequential variants win below n ≈ 1,000 where parallel overheads
// dominate; Program 4's speedup grows with n. Absolute seconds differ from
// the paper (different host, simulated device) — see EXPERIMENTS.md.
#include <array>
#include <cstdio>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"
#include "spmd/device.hpp"

namespace {

using kreg::bench::Table;

struct ProgramTimes {
  double racine = 0.0;
  double multicore = 0.0;
  double sequential = 0.0;
  double spmd = 0.0;
};

ProgramTimes run_all(const kreg::data::Dataset& data, std::size_t k,
                     std::size_t reps, kreg::spmd::Device& device) {
  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, k);

  kreg::CvOptimizerSelector::Config p1_cfg;  // Program 1
  const kreg::CvOptimizerSelector program1(p1_cfg);

  kreg::CvOptimizerSelector::Config p2_cfg;  // Program 2
  p2_cfg.parallel_objective = true;
  const kreg::CvOptimizerSelector program2(p2_cfg);

  const kreg::SortedGridSelector program3(kreg::KernelType::kEpanechnikov,
                                          kreg::Precision::kFloat);

  kreg::SpmdSelectorConfig p4_cfg;  // Program 4: paper defaults (float, 512)
  const kreg::SpmdGridSelector program4(device, p4_cfg);

  ProgramTimes t;
  t.racine = kreg::bench::time_median(
      [&] { (void)program1.select(data, grid); }, reps);
  t.multicore = kreg::bench::time_median(
      [&] { (void)program2.select(data, grid); }, reps);
  t.sequential = kreg::bench::time_median(
      [&] { (void)program3.select(data, grid); }, reps);
  t.spmd = kreg::bench::time_median(
      [&] { (void)program4.select(data, grid); }, reps);
  return t;
}

}  // namespace

int main() {
  const std::size_t k = 50;
  const std::size_t reps = kreg::bench::repetitions();
  const std::vector<std::size_t> sizes = kreg::bench::sample_sizes();

  kreg::bench::banner(
      "TABLE I / FIGURE 1 — run times (s) by program and sample size, k=50");
  std::printf("reps=%zu (median reported)%s\n\n", reps,
              kreg::bench::full_mode()
                  ? ", FULL mode (paper sample sizes)"
                  : "; set KREG_BENCH_FULL=1 for n up to 20,000");

  kreg::rng::Stream stream(20170529);  // fixed seed: same data every run
  kreg::spmd::Device device;           // simulated Tesla S10

  Table table({"n", "Racine&Hayfield", "Multicore", "Sequential C",
               "SPMD device", "speedup 4 vs 1"},
              16);
  std::vector<std::array<double, 5>> fig1_rows;

  for (std::size_t n : sizes) {
    const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
    const ProgramTimes t = run_all(data, k, reps, device);
    table.add_row({std::to_string(n), Table::fmt_seconds(t.racine),
                   Table::fmt_seconds(t.multicore),
                   Table::fmt_seconds(t.sequential),
                   Table::fmt_seconds(t.spmd),
                   Table::fmt_double(t.racine / t.spmd, 2) + "x"});
    fig1_rows.push_back({static_cast<double>(n), t.racine, t.multicore,
                         t.sequential, t.spmd});
  }
  table.print();

  kreg::bench::banner(
      "Figure 1 series (CSV: n, program1..program4 seconds; log-x when "
      "plotted)");
  std::printf("n,racine_hayfield,multicore,sequential_c,spmd_device\n");
  for (const auto& row : fig1_rows) {
    std::printf("%.0f,%.4f,%.4f,%.4f,%.4f\n", row[0], row[1], row[2], row[3],
                row[4]);
  }
  std::printf("\n");
  return 0;
}
