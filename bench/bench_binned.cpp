// Baseline bench: linear-binned CV (Fan & Marron) versus the paper's exact
// sorted sweep. Binning is the literature's standard speed escape hatch —
// O(n + G²k) instead of O(n² log n) — at the price of approximation error.
// This quantifies both sides of that trade on the paper's DGP.
#include <cmath>
#include <cstdio>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"

int main() {
  using kreg::bench::Table;
  const std::size_t reps = kreg::bench::repetitions();
  kreg::rng::Stream stream(2468);

  kreg::bench::banner(
      "BINNED BASELINE — exact sorted sweep vs linear-binned CV (k=50)");
  Table table({"n", "bins", "exact (s)", "binned (s)", "h exact", "h binned",
               "|dCV|/CV"},
              13);
  for (std::size_t n : {2000u, 5000u, kreg::bench::full_mode() ? 20000u : 10000u}) {
    const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
    const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, 50);
    const kreg::SortedGridSelector exact_selector;
    kreg::SelectionResult exact;
    const double t_exact = kreg::bench::time_median(
        [&] { exact = exact_selector.select(data, grid); }, reps);

    for (std::size_t bins : {100u, 400u}) {
      kreg::SelectionResult binned;
      const double t_binned = kreg::bench::time_median(
          [&] { binned = kreg::binned_select(data, grid, bins); }, reps);
      const double rel_cv_err =
          std::abs(binned.cv_score - exact.cv_score) / exact.cv_score;
      table.add_row({std::to_string(n), std::to_string(bins),
                     Table::fmt_seconds(t_exact), Table::fmt_seconds(t_binned),
                     Table::fmt_double(exact.bandwidth, 4),
                     Table::fmt_double(binned.bandwidth, 4),
                     Table::fmt_double(rel_cv_err, 5)});
    }
  }
  table.print();
  std::printf(
      "\nBinning decouples cost from n entirely; the exact sweep keeps the "
      "guarantee. The\npaper's approach (sort + SPMD) keeps exactness while "
      "attacking the constant factor.\n\n");
  return 0;
}
