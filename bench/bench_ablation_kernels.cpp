// Ablation (paper footnote 1): the sorting strategy applies to compact
// polynomial kernels (Epanechnikov, Uniform, Triangular — we add Biweight
// and Triweight); the Gaussian "does not use an indicator function to
// exclude observations and can consequently be constructed for k different
// bandwidths without the need for a sort" — i.e. only the naive path
// applies, and its cost scales with k. Times each kernel on its fastest
// available grid-search path and reports the selected bandwidth.
#include <cstdio>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"

int main() {
  using kreg::bench::Table;
  const std::size_t n = 1500;
  const std::size_t k = 50;
  const std::size_t reps = kreg::bench::repetitions();

  kreg::bench::banner("ABLATION — kernel family on the grid search (n=" +
                      std::to_string(n) + ", k=50)");

  kreg::rng::Stream stream(55);
  const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, k);

  Table table({"kernel", "path", "time (s)", "selected h", "CV at h"}, 15);
  for (kreg::KernelType kernel : kreg::kAllKernels) {
    kreg::SelectionResult result;
    double t = 0.0;
    const bool sweepable = kreg::is_sweepable(kernel);
    if (sweepable) {
      const kreg::SortedGridSelector selector(kernel);
      t = kreg::bench::time_median(
          [&] { result = selector.select(data, grid); }, reps);
    } else {
      const kreg::NaiveGridSelector selector(kernel);
      t = kreg::bench::time_median(
          [&] { result = selector.select(data, grid); }, reps);
    }
    table.add_row({std::string(kreg::to_string(kernel)),
                   sweepable ? "sorted sweep" : "naive",
                   Table::fmt_seconds(t), Table::fmt_double(result.bandwidth, 4),
                   Table::fmt_double(result.cv_score, 5)});
  }
  table.print();
  std::printf(
      "\nAll compact polynomial kernels ride the O(n^2 log n) sweep; the "
      "Gaussian and Cosine\nfall back to the O(k n^2) naive path "
      "(footnote 1 of the paper).\n\n");
  return 0;
}
