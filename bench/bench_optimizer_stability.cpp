// Reproduces the paper's §III/§V robustness argument: "the objective
// function … is not necessarily concave. Consequently, numerical
// optimization techniques … will often produce non-global minima that
// depend upon the initial values", while the grid search guarantees the
// global grid minimum.
//
// For datasets with rough CV surfaces (doppler, step), runs Brent from many
// different sub-brackets, tabulates the distinct local minima it lands in,
// and compares the worst/best against the grid-search answer. Also reports
// the multistart mitigation's cost.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"

namespace {

using kreg::bench::Table;

void analyze(const std::string& name, const kreg::data::Dataset& data) {
  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, 200);
  const auto objective = [&](double h) { return kreg::cv_score(data, h); };

  // Grid search: the guaranteed global grid minimum.
  const auto grid_result = kreg::SortedGridSelector().select(data, grid);

  // Brent from 12 different initial brackets, as a user poking at
  // optimize() with different starting intervals would.
  const std::size_t starts = 12;
  std::vector<kreg::OptimizeResult> finishes;
  const double lo = grid.min();
  const double hi = grid.max();
  for (std::size_t s = 0; s < starts; ++s) {
    const double a = lo + (hi - lo) * static_cast<double>(s) /
                              static_cast<double>(starts);
    const double b = lo + (hi - lo) * static_cast<double>(s + 4) /
                              static_cast<double>(starts);
    finishes.push_back(kreg::brent(objective, a, std::min(b, hi)));
  }

  double best = finishes[0].fx;
  double worst = finishes[0].fx;
  std::vector<double> distinct_minima;
  for (const auto& f : finishes) {
    best = std::min(best, f.fx);
    worst = std::max(worst, f.fx);
    const bool is_new =
        std::none_of(distinct_minima.begin(), distinct_minima.end(),
                     [&](double x) { return std::abs(x - f.x) < 1e-3; });
    if (is_new) {
      distinct_minima.push_back(f.x);
    }
  }

  kreg::CvOptimizerSelector::Config multi_cfg;
  multi_cfg.starts = 8;
  const auto multi = kreg::CvOptimizerSelector(multi_cfg).select(data, grid);

  Table table({"quantity", "value"}, 34);
  table.add_row({"grid-search CV minimum", Table::fmt_double(grid_result.cv_score, 6)});
  table.add_row({"grid-search bandwidth", Table::fmt_double(grid_result.bandwidth, 4)});
  table.add_row({"optimizer distinct minima found", std::to_string(distinct_minima.size())});
  table.add_row({"optimizer best CV across starts", Table::fmt_double(best, 6)});
  table.add_row({"optimizer worst CV across starts", Table::fmt_double(worst, 6)});
  table.add_row({"worst/global ratio", Table::fmt_double(worst / grid_result.cv_score, 3)});
  table.add_row({"multistart(8) CV", Table::fmt_double(multi.cv_score, 6)});
  table.add_row({"multistart(8) objective evals", std::to_string(multi.evaluations)});

  kreg::bench::banner("OPTIMIZER STABILITY — " + name + " (n=" +
                      std::to_string(data.size()) + ")");
  table.print();
}

}  // namespace

int main() {
  kreg::rng::Stream stream(31415);
  analyze("doppler DGP (rough CV surface)",
          kreg::data::doppler_dgp(800, stream));
  analyze("step DGP (discontinuous mean)", kreg::data::step_dgp(800, stream));
  analyze("paper DGP (smooth surface — optimizer is fine here)",
          kreg::data::paper_dgp(800, stream));
  std::printf(
      "Bracket-dependent finishes on the rough surfaces illustrate why the "
      "paper prefers the\ngrid search; the smooth paper-DGP case shows the "
      "optimizer is adequate when the surface\ncooperates, at the cost of "
      "no global guarantee.\n\n");
  return 0;
}
