// Ablation (paper §III + the window-sweep extension): the core algorithmic
// claim, three ways.
//
//   naive        O(k·n²)       recompute the objective per bandwidth
//   per-row-sort O(n² log n)   sort each observation's distance row once,
//                              sweep all k bandwidths incrementally
//   window-sweep O(n log n + n·(k + admitted))
//                              sort (X, Y) once globally; per observation,
//                              two monotone pointers expand a contiguous
//                              window over the ascending bandwidth grid
//
// The naive-vs-sorted gap grows linearly in k at fixed n (§III); the
// window-vs-sorted gap grows with n because the per-observation sort is
// gone entirely. Besides the paper-style tables, results are emitted as
// machine-readable JSON to BENCH_sweep.json in the working directory.
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"

namespace {

struct Cell {
  const char* section;
  std::size_t n;
  std::size_t k;
  double naive_s;   // < 0 when skipped
  double sorted_s;
  double window_s;
};

void write_json(const std::vector<Cell>& cells, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"sweep_ablation\",\n  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"section\": \"%s\", \"n\": %zu, \"k\": %zu, "
                 "\"sorted_s\": %.6e, \"window_s\": %.6e, "
                 "\"window_speedup_vs_sorted\": %.3f",
                 c.section, c.n, c.k, c.sorted_s, c.window_s,
                 c.sorted_s / c.window_s);
    if (c.naive_s >= 0.0) {
      std::fprintf(f, ", \"naive_s\": %.6e", c.naive_s);
    }
    std::fprintf(f, "}%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu cells)\n", path, cells.size());
}

}  // namespace

int main() {
  using kreg::bench::Table;
  const std::size_t reps = kreg::bench::repetitions();
  kreg::rng::Stream stream(1234);
  std::vector<Cell> cells;

  const kreg::NaiveGridSelector naive_selector;
  const kreg::SortedGridSelector sorted_selector;
  const kreg::WindowSweepSelector window_selector;

  kreg::bench::banner(
      "ABLATION — naive vs per-row-sort vs window sweep, scaling in k "
      "(n=2000)");
  {
    const kreg::data::Dataset data = kreg::data::paper_dgp(2000, stream);
    Table table({"k", "naive (s)", "sorted (s)", "window (s)", "naive/win",
                 "sorted/win"},
                12);
    for (std::size_t k : {5u, 10u, 25u, 50u, 100u, 200u}) {
      const kreg::BandwidthGrid grid =
          kreg::BandwidthGrid::default_for(data, k);
      const double t_naive = kreg::bench::time_median(
          [&] { (void)naive_selector.select(data, grid); }, reps);
      const double t_sorted = kreg::bench::time_median(
          [&] { (void)sorted_selector.select(data, grid); }, reps);
      const double t_window = kreg::bench::time_median(
          [&] { (void)window_selector.select(data, grid); }, reps);
      table.add_row({std::to_string(k), Table::fmt_seconds(t_naive),
                     Table::fmt_seconds(t_sorted),
                     Table::fmt_seconds(t_window),
                     Table::fmt_double(t_naive / t_window, 1) + "x",
                     Table::fmt_double(t_sorted / t_window, 1) + "x"});
      cells.push_back({"k_scaling", 2000, k, t_naive, t_sorted, t_window});
    }
    table.print();
    std::printf(
        "\nNaive cost grows ~linearly in k; both incremental sweeps are "
        "nearly flat — the §III claim. The window sweep additionally drops "
        "the per-row sort.\n");
  }

  kreg::bench::banner(
      "ABLATION — naive vs per-row-sort vs window sweep, scaling in n "
      "(k=50)");
  {
    Table table({"n", "naive (s)", "sorted (s)", "window (s)", "naive/win",
                 "sorted/win"},
                12);
    for (std::size_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
      const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
      const kreg::BandwidthGrid grid =
          kreg::BandwidthGrid::default_for(data, 50);
      const double t_naive = kreg::bench::time_median(
          [&] { (void)naive_selector.select(data, grid); }, reps);
      const double t_sorted = kreg::bench::time_median(
          [&] { (void)sorted_selector.select(data, grid); }, reps);
      const double t_window = kreg::bench::time_median(
          [&] { (void)window_selector.select(data, grid); }, reps);
      table.add_row({std::to_string(n), Table::fmt_seconds(t_naive),
                     Table::fmt_seconds(t_sorted),
                     Table::fmt_seconds(t_window),
                     Table::fmt_double(t_naive / t_window, 1) + "x",
                     Table::fmt_double(t_sorted / t_window, 1) + "x"});
      cells.push_back({"n_scaling", n, 50, t_naive, t_sorted, t_window});
    }
    table.print();
    std::printf("\n");
  }

  kreg::bench::banner(
      "ABLATION — per-row-sort vs window sweep at large n (k=50, naive "
      "skipped)");
  {
    // The per-row path's O(n² log n) dominates here; the window path's
    // O(n log n + n·(k + admitted)) should pull ≥5x ahead by n = 20,000.
    Table table({"n", "sorted (s)", "window (s)", "sorted/win"}, 14);
    std::vector<std::size_t> sizes = {5000u, 10000u, 20000u};
    for (std::size_t n : sizes) {
      const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
      const kreg::BandwidthGrid grid =
          kreg::BandwidthGrid::default_for(data, 50);
      const double t_sorted = kreg::bench::time_median(
          [&] { (void)sorted_selector.select(data, grid); }, reps);
      const double t_window = kreg::bench::time_median(
          [&] { (void)window_selector.select(data, grid); }, reps);
      table.add_row({std::to_string(n), Table::fmt_seconds(t_sorted),
                     Table::fmt_seconds(t_window),
                     Table::fmt_double(t_sorted / t_window, 1) + "x"});
      cells.push_back({"large_n", n, 50, -1.0, t_sorted, t_window});
    }
    table.print();
    std::printf("\n");
  }

  kreg::bench::banner(
      "ABLATION — multivariate ray: per-row sort vs z-window (p=2, k=50)");
  {
    // Same per-row-vs-global-sort ablation along the bandwidth ray: the
    // per-row path sorts every observation's scaled Chebyshev row, the
    // window path sorts once by the scaled first coordinate and filters the
    // z-window survivors through the remaining dimensions. The scale grid
    // brackets the CV optimum (c* ≈ 0.04 on this DGP) the way a selection
    // run would; the window path's cost is proportional to the top scale's
    // z-window, so a grid spanning the whole domain (top scale ~1) would
    // degenerate both paths to all-pairs coefficient work.
    Table table({"n", "per-row (s)", "window (s)", "per-row/win"}, 14);
    for (std::size_t n : {2000u, 5000u, 10000u, 20000u}) {
      const kreg::data::MDataset data =
          kreg::data::multivariate_dgp(n, 2, stream);
      const auto ratios = kreg::default_ray_ratios(data);
      const kreg::BandwidthGrid scales(0.01, 0.1, 50);
      const double t_per_row = kreg::bench::time_median(
          [&] {
            (void)kreg::multi_ray_cv_profile(data, ratios, scales.values(),
                                             kreg::KernelType::kEpanechnikov);
          },
          reps);
      const double t_window = kreg::bench::time_median(
          [&] {
            (void)kreg::multi_ray_cv_profile_window(
                data, ratios, scales.values(),
                kreg::KernelType::kEpanechnikov);
          },
          reps);
      table.add_row({std::to_string(n), Table::fmt_seconds(t_per_row),
                     Table::fmt_seconds(t_window),
                     Table::fmt_double(t_per_row / t_window, 1) + "x"});
      cells.push_back({"ray", n, 50, -1.0, t_per_row, t_window});
    }
    table.print();
    std::printf("\n");
  }

  kreg::bench::banner(
      "ABLATION — device KDE LSCV: per-row sort vs window (k=50)");
  {
    // The simulated device pays the same algorithmic bill as the host: the
    // per-row path sorts an n-length |Δ| row per thread (and stages the n×n
    // row matrix in global memory), the window path indexes the one
    // host-sorted X with two admission windows per thread.
    Table table({"n", "per-row (s)", "window (s)", "per-row/win"}, 14);
    kreg::spmd::Device device;
    for (std::size_t n : {2000u, 5000u, 10000u, 20000u}) {
      std::vector<double> xs(n);
      for (auto& x : xs) {
        x = stream.uniform();
      }
      const kreg::BandwidthGrid grid(0.002, 0.2, 50);
      kreg::SpmdKdeConfig per_row_cfg;
      per_row_cfg.algorithm = kreg::SweepAlgorithm::kPerRowSort;
      const kreg::SpmdKdeSelector per_row(device, per_row_cfg);
      const kreg::SpmdKdeSelector window(device);
      const double t_per_row = kreg::bench::time_median(
          [&] { (void)per_row.select(xs, grid); }, reps);
      const double t_window = kreg::bench::time_median(
          [&] { (void)window.select(xs, grid); }, reps);
      table.add_row({std::to_string(n), Table::fmt_seconds(t_per_row),
                     Table::fmt_seconds(t_window),
                     Table::fmt_double(t_per_row / t_window, 1) + "x"});
      cells.push_back({"device_kde", n, 50, -1.0, t_per_row, t_window});
    }
    table.print();
    std::printf(
        "\nThe device window path also drops the n×n global-memory row "
        "matrix, lifting the per-row path's sample-size cap.\n\n");
  }

  write_json(cells, "BENCH_sweep.json");
  return 0;
}
