// Ablation (paper §III): the core algorithmic claim. The naive grid search
// recomputes the O(n²) objective for each of the k bandwidths — O(k·n²) —
// while the sorting-based sweep computes all k at once in O(n² log n)
// (per-observation sort dominating). The gap should therefore grow
// linearly in k at fixed n.
#include <cstdio>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"

int main() {
  using kreg::bench::Table;
  const std::size_t reps = kreg::bench::repetitions();
  kreg::rng::Stream stream(1234);

  kreg::bench::banner(
      "ABLATION — sorted sweep vs naive grid search, scaling in k (n=2000)");
  {
    const kreg::data::Dataset data = kreg::data::paper_dgp(2000, stream);
    const kreg::SortedGridSelector sorted_selector;
    const kreg::NaiveGridSelector naive_selector;
    Table table({"k", "naive (s)", "sorted (s)", "ratio"}, 14);
    for (std::size_t k : {5u, 10u, 25u, 50u, 100u, 200u}) {
      const kreg::BandwidthGrid grid =
          kreg::BandwidthGrid::default_for(data, k);
      const double t_naive = kreg::bench::time_median(
          [&] { (void)naive_selector.select(data, grid); }, reps);
      const double t_sorted = kreg::bench::time_median(
          [&] { (void)sorted_selector.select(data, grid); }, reps);
      table.add_row({std::to_string(k), Table::fmt_seconds(t_naive),
                     Table::fmt_seconds(t_sorted),
                     Table::fmt_double(t_naive / t_sorted, 1) + "x"});
    }
    table.print();
    std::printf(
        "\nNaive cost grows ~linearly in k; the sorted sweep is nearly flat "
        "— the §III claim.\n");
  }

  kreg::bench::banner(
      "ABLATION — sorted sweep vs naive grid search, scaling in n (k=50)");
  {
    const kreg::SortedGridSelector sorted_selector;
    const kreg::NaiveGridSelector naive_selector;
    Table table({"n", "naive (s)", "sorted (s)", "ratio"}, 14);
    for (std::size_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
      const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
      const kreg::BandwidthGrid grid =
          kreg::BandwidthGrid::default_for(data, 50);
      const double t_naive = kreg::bench::time_median(
          [&] { (void)naive_selector.select(data, grid); }, reps);
      const double t_sorted = kreg::bench::time_median(
          [&] { (void)sorted_selector.select(data, grid); }, reps);
      table.add_row({std::to_string(n), Table::fmt_seconds(t_naive),
                     Table::fmt_seconds(t_sorted),
                     Table::fmt_double(t_naive / t_sorted, 1) + "x"});
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
