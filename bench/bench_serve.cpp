// bench_serve — load generator for the kreg-serve scheduler.
//
// Drives the serving stack at concurrency {1, 8, 32} in two phases per
// level: a *unique* phase (every request a distinct dataset seed — all
// cache misses) and a *repeat* phase (the same requests again — the
// profile cache must answer). Reports p50/p99 latency, throughput, and the
// repeat-phase hit rate, writes BENCH_serve.json, and exits nonzero when
// any job fails or the repeat phase hits less than half its requests —
// the CI serve job relies on both assertions.
//
// Modes:
//   bench_serve                      in-process (ServeContext, no sockets)
//   bench_serve --socket PATH        against a running kreg_serve daemon
//   bench_serve --device-budget B    ledger cap for in-process mode
//                                    (default 1MiB — forces streamed plans
//                                    and real admission pressure)
//   bench_serve --jobs N             requests per client per phase (def. 8)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.hpp"
#include "core/streaming.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct PhaseResult {
  std::size_t jobs = 0;
  std::size_t failed = 0;
  std::size_t hits = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;

  double throughput() const {
    return seconds > 0.0 ? static_cast<double>(jobs) / seconds : 0.0;
  }
  double hit_rate() const {
    return jobs > 0 ? static_cast<double>(hits) / static_cast<double>(jobs)
                    : 0.0;
  }
};

struct Cell {
  std::size_t concurrency = 0;
  const char* phase = "";
  PhaseResult result;
};

/// One request line: estimator mixed by index, dataset seed unique per
/// (client, index) so the unique phase misses and the repeat phase hits.
std::string request_line(std::size_t client, std::size_t index) {
  static const char* kEstimators[] = {"nw", "knn", "oscv"};
  const char* estimator = kEstimators[index % 3];
  const std::uint64_t seed = 1000 + client * 97 + index;
  std::string line = "select estimator=" + std::string(estimator) +
                     " dgp=paper n=768 seed=" + std::to_string(seed) +
                     " backend=device";
  if (index % 2 == 1) {
    // knn grids are neighbor counts (integers >= 1), not bandwidths.
    line += std::strcmp(estimator, "knn") == 0 ? " grid=4:96:16"
                                               : " grid=0.05:1.0:32";
  }
  return line;
}

class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::string roundtrip(const std::string& line) = 0;
};

class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(kreg::serve::ServeContext& context)
      : context_(context) {}
  std::string roundtrip(const std::string& line) override {
    return context_.handle_line(line, nullptr);
  }

 private:
  kreg::serve::ServeContext& context_;
};

class SocketTransport : public Transport {
 public:
  explicit SocketTransport(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd_);
      throw std::runtime_error("connect(" + path + "): " + std::strerror(err));
    }
  }
  ~SocketTransport() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  std::string roundtrip(const std::string& line) override {
    std::string out = line + "\n";
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t wrote = ::write(fd_, out.data() + sent, out.size() - sent);
      if (wrote <= 0) {
        throw std::runtime_error("write failed");
      }
      sent += static_cast<std::size_t>(wrote);
    }
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got <= 0) {
        throw std::runtime_error("connection closed mid-response");
      }
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
    const std::size_t newline = buffer_.find('\n');
    std::string response = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return response;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct BenchConfig {
  std::string socket_path;  // empty = in-process
  std::size_t device_budget = std::size_t{1} << 20;
  std::size_t jobs_per_client = 8;
  kreg::serve::ServeContext* context = nullptr;
};

PhaseResult run_phase(const BenchConfig& config, std::size_t concurrency,
                      const char* phase) {
  PhaseResult result;
  std::vector<std::vector<double>> latencies(concurrency);
  std::vector<std::size_t> failed(concurrency, 0);
  std::vector<std::size_t> hits(concurrency, 0);
  std::vector<std::string> errors(concurrency);
  const auto start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (std::size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      try {
        std::unique_ptr<Transport> transport;
        if (config.socket_path.empty()) {
          transport = std::make_unique<InProcessTransport>(*config.context);
        } else {
          transport = std::make_unique<SocketTransport>(config.socket_path);
        }
        for (std::size_t j = 0; j < config.jobs_per_client; ++j) {
          const std::string line = request_line(c, j);
          const auto t0 = Clock::now();
          const std::string response = transport->roundtrip(line);
          const auto t1 = Clock::now();
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
          if (response.rfind("ok ", 0) != 0) {
            ++failed[c];
            if (errors[c].empty()) {
              errors[c] = response;
            }
          } else if (response.find(" cache=hit") != std::string::npos) {
            ++hits[c];
          }
        }
      } catch (const std::exception& e) {
        failed[c] += config.jobs_per_client - latencies[c].size();
        if (errors[c].empty()) {
          errors[c] = e.what();
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::vector<double> all;
  for (std::size_t c = 0; c < concurrency; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    result.failed += failed[c];
    result.hits += hits[c];
    if (!errors[c].empty()) {
      std::fprintf(stderr, "bench_serve: [%s c=%zu] %s\n", phase, c,
                   errors[c].c_str());
    }
  }
  result.jobs = concurrency * config.jobs_per_client;
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    result.p50_ms = all[all.size() / 2];
    result.p99_ms = all[std::min(all.size() - 1, (all.size() * 99) / 100)];
  }
  return result;
}

void write_json(const std::vector<Cell>& cells, const char* mode,
                const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"serve\",\n  \"mode\": \"%s\",\n"
                  "  \"cells\": [\n",
               mode);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"concurrency\": %zu, \"phase\": \"%s\", \"jobs\": %zu, "
        "\"failed\": %zu, \"cache_hits\": %zu, \"hit_rate\": %.3f, "
        "\"seconds\": %.6e, \"throughput_jobs_per_s\": %.2f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
        c.concurrency, c.phase, c.result.jobs, c.result.failed, c.result.hits,
        c.result.hit_rate(), c.result.seconds, c.result.throughput(),
        c.result.p50_ms, c.result.p99_ms, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu cells)\n", path, cells.size());
}

}  // namespace

int main(int argc, char** argv) {
  using kreg::bench::Table;
  BenchConfig config;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::invalid_argument(arg + " requires a value");
        }
        return argv[++i];
      };
      if (arg == "--socket") {
        config.socket_path = value();
      } else if (arg == "--device-budget") {
        config.device_budget = kreg::parse_memory_budget(value());
      } else if (arg == "--jobs") {
        config.jobs_per_client =
            static_cast<std::size_t>(std::stoul(value()));
        if (config.jobs_per_client == 0) {
          throw std::invalid_argument("--jobs must be positive");
        }
      } else {
        throw std::invalid_argument("unknown argument '" + arg + "'");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 2;
  }

  std::unique_ptr<kreg::serve::ServeContext> context;
  if (config.socket_path.empty()) {
    kreg::serve::SchedulerConfig sched;
    sched.device_budget_bytes = config.device_budget;
    sched.record_events = false;  // unbounded event log ≠ a load test
    context = std::make_unique<kreg::serve::ServeContext>(sched);
    context->scheduler().start_pump();
    config.context = context.get();
    std::printf("bench_serve: in-process, device budget %zu bytes\n",
                config.device_budget);
  } else {
    std::printf("bench_serve: against daemon at %s\n",
                config.socket_path.c_str());
  }

  kreg::bench::banner("kreg-serve load test");
  Table table({"concurrency", "phase", "jobs", "failed", "hit rate",
               "p50 (ms)", "p99 (ms)", "jobs/s"});
  std::vector<Cell> cells;
  bool ok = true;
  for (const std::size_t concurrency : {1u, 8u, 32u}) {
    for (const char* phase : {"unique", "repeat"}) {
      const PhaseResult result = run_phase(config, concurrency, phase);
      table.add_row({std::to_string(concurrency), phase,
                     std::to_string(result.jobs),
                     std::to_string(result.failed),
                     Table::fmt_double(result.hit_rate(), 3),
                     Table::fmt_double(result.p50_ms, 3),
                     Table::fmt_double(result.p99_ms, 3),
                     Table::fmt_double(result.throughput(), 1)});
      cells.push_back(Cell{concurrency, phase, result});
      if (result.failed != 0) {
        std::fprintf(stderr,
                     "bench_serve: %zu failed jobs at concurrency %zu (%s)\n",
                     result.failed, concurrency, phase);
        ok = false;
      }
      if (std::string(phase) == "repeat" && result.hit_rate() <= 0.5) {
        std::fprintf(stderr,
                     "bench_serve: repeat hit rate %.3f <= 0.5 at "
                     "concurrency %zu\n",
                     result.hit_rate(), concurrency);
        ok = false;
      }
    }
  }
  table.print();
  write_json(cells, config.socket_path.empty() ? "in-process" : "socket",
             "BENCH_serve.json");
  if (context) {
    context->scheduler().stop_pump();
  }
  return ok ? 0 : 1;
}
