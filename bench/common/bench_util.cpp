#include "common/bench_util.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "sort/introsort.hpp"

namespace kreg::bench {

double time_once(const std::function<void()>& f) {
  const auto start = std::chrono::steady_clock::now();
  f();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

double time_median(const std::function<void()>& f, std::size_t reps) {
  if (reps == 0) {
    reps = 1;
  }
  std::vector<double> times;
  times.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    times.push_back(time_once(f));
  }
  kreg::sort::introsort(std::span<double>(times));
  return times[times.size() / 2];
}

bool full_mode() {
  const char* env = std::getenv("KREG_BENCH_FULL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::size_t repetitions() {
  const char* env = std::getenv("KREG_BENCH_REPS");
  if (env == nullptr) {
    return 3;
  }
  const long v = std::strtol(env, nullptr, 10);
  return v < 1 ? 1 : static_cast<std::size_t>(v);
}

std::vector<std::size_t> sample_sizes() {
  // Table I's axis. (The paper's text also mentions 500; Table I rows are
  // 50, 100, 500, 1000, 2000, 10000, 20000 — we use the union with the
  // Table II axis and cut at 5,000 unless full mode is on.)
  std::vector<std::size_t> all = {50, 100, 500, 1000, 2000, 5000, 10000, 20000};
  if (!full_mode()) {
    std::erase_if(all, [](std::size_t n) { return n > 5000; });
  }
  return all;
}

std::vector<std::size_t> bandwidth_counts() {
  return {5, 10, 50, 100, 500, 1000, 2000};
}

Table::Table(std::vector<std::string> headers, int width)
    : headers_(std::move(headers)), width_(width) {}

void Table::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

void Table::print() const {
  for (const std::string& h : headers_) {
    std::printf("%*s", width_, h.c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    for (int c = 0; c < width_; ++c) {
      std::printf("-");
    }
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (const std::string& cell : row) {
      std::printf("%*s", width_, cell.c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

std::string Table::fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

std::string Table::fmt_double(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
  std::fflush(stdout);
}

}  // namespace kreg::bench
