#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

/// Shared harness for the table/figure reproduction binaries: wall-clock
/// timing with repetition + median (the paper runs each configuration five
/// times), fixed-width table printing in the paper's layout, and
/// environment knobs:
///
///   KREG_BENCH_FULL=1   run the paper's full sample sizes (up to 20,000);
///                       default caps at 5,000 so the whole suite finishes
///                       in minutes on a small container.
///   KREG_BENCH_REPS=N   repetitions per cell (default 3; paper used 5).
namespace kreg::bench {

/// Seconds elapsed while running f once.
double time_once(const std::function<void()>& f);

/// Median of `reps` timings of f (reps >= 1).
double time_median(const std::function<void()>& f, std::size_t reps);

/// True when KREG_BENCH_FULL is set to a nonzero value.
bool full_mode();

/// Repetitions per timed cell (KREG_BENCH_REPS, default 3, min 1).
std::size_t repetitions();

/// The paper's sample-size axis, truncated unless full_mode().
std::vector<std::size_t> sample_sizes();

/// The paper's bandwidth-count axis (Table II).
std::vector<std::size_t> bandwidth_counts();

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14);

  void add_row(const std::vector<std::string>& cells);
  void print() const;

  static std::string fmt_seconds(double s);
  static std::string fmt_double(double v, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int width_;
};

/// Prints a section banner.
void banner(const std::string& title);

}  // namespace kreg::bench
