// Ablation (paper §IV-B): "To facilitate efficient caching of memory and
// to reduce bank conflicts, the matrix indices are switched at this stage"
// — the residual matrix is written bandwidth-major (k groups of n) so each
// per-bandwidth reduction reads a contiguous run, instead of
// observation-major (n groups of k) which forces stride-k reads. Times both
// layouts at fixed (n, k) and confirms identical selections.
#include <cstdio>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"
#include "spmd/device.hpp"

int main() {
  using kreg::bench::Table;
  const std::size_t n = kreg::bench::full_mode() ? 10000 : 4000;
  const std::size_t reps = kreg::bench::repetitions();

  kreg::rng::Stream stream(66);
  const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
  kreg::spmd::Device device;

  kreg::bench::banner("ABLATION — residual-matrix layout (SPMD selector, n=" +
                      std::to_string(n) + ")");

  Table table({"k", "bandwidth-major (s)", "observation-major (s)", "same h?"},
              22);
  for (std::size_t k : {50u, 200u, 1000u}) {
    const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, k);

    kreg::SpmdSelectorConfig bm_cfg;
    bm_cfg.layout = kreg::ResidualLayout::kBandwidthMajor;
    kreg::SpmdSelectorConfig om_cfg;
    om_cfg.layout = kreg::ResidualLayout::kObservationMajor;

    double h_bm = 0.0;
    double h_om = 0.0;
    const double t_bm = kreg::bench::time_median(
        [&] {
          h_bm = kreg::SpmdGridSelector(device, bm_cfg)
                     .select(data, grid)
                     .bandwidth;
        },
        reps);
    const double t_om = kreg::bench::time_median(
        [&] {
          h_om = kreg::SpmdGridSelector(device, om_cfg)
                     .select(data, grid)
                     .bandwidth;
        },
        reps);
    table.add_row({std::to_string(k), Table::fmt_seconds(t_bm),
                   Table::fmt_seconds(t_om), h_bm == h_om ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nBandwidth-major keeps each reduction's reads contiguous (the "
      "paper's transposition);\nobservation-major reads with stride k and "
      "pays for it as k grows.\n\n");
  return 0;
}
