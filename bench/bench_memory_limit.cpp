// Reproduces the paper's §IV-A / §V memory-capacity finding: "the program
// for estimating optimal bandwidth … does not work for sample sizes greater
// than 20,000" because two n×n single-precision matrices (plus three n×k
// matrices) exhaust the 4 GB device.
//
// Part 1 charts the predicted footprint against the 4 GB ledger across
// sample sizes, marking the paper's cliff. Part 2 demonstrates the failure
// live on a proportionally scaled-down device (so the bench itself does not
// need gigabytes), and shows the streaming extension sailing past the same
// limit.
// With KREG_SPMD_SANITIZE set (any truthy value), Part 2 runs on a
// CheckedDevice with a counting sink — the sanitizer's log-and-count bench
// mode — and reports findings and leaked allocations alongside the ledger
// peak, demonstrating the instrumented device on the real selector.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"
#include "spmd/device.hpp"
#include "spmd/errors.hpp"
#include "spmd/sanitizer/checked_device.hpp"

namespace {

using kreg::bench::Table;

bool sanitize_requested() {
  const char* env = std::getenv("KREG_SPMD_SANITIZE");
  if (env == nullptr) {
    return false;
  }
  const std::string_view value(env);
  return !value.empty() && value != "0" && value != "off";
}

}  // namespace

int main() {
  const std::size_t k = 50;

  kreg::bench::banner(
      "MEMORY LIMIT — predicted device footprint vs the 4 GB ledger (k=50, "
      "float)");
  {
    const std::size_t capacity = 4ULL * 1024 * 1024 * 1024;
    Table table({"n", "faithful (GB)", "streaming (GB)", "fits 4 GB?"}, 16);
    for (std::size_t n :
         {1000u, 5000u, 10000u, 15000u, 20000u, 23000u, 25000u, 40000u}) {
      const std::size_t faithful = kreg::SpmdGridSelector::estimated_bytes(
          n, k, kreg::Precision::kFloat, /*streaming=*/false);
      const std::size_t streaming = kreg::SpmdGridSelector::estimated_bytes(
          n, k, kreg::Precision::kFloat, /*streaming=*/true);
      table.add_row({std::to_string(n),
                     Table::fmt_double(faithful / 1073741824.0, 3),
                     Table::fmt_double(streaming / 1073741824.0, 4),
                     faithful <= capacity ? "yes" : "NO (paper's failure)"});
    }
    table.print();
  }

  kreg::bench::banner(
      "MEMORY LIMIT — live demonstration on a 1/1024-scale device (4 MB)");
  {
    // 4 MB device: the same arithmetic places the cliff near n = 700.
    // Under KREG_SPMD_SANITIZE the same runs go through the checked device
    // (log-and-count sink, so alloc failures still surface as exceptions).
    const bool sanitize = sanitize_requested();
    std::shared_ptr<kreg::spmd::CountingSink> sink;
    std::unique_ptr<kreg::spmd::Device> device_holder;
    if (sanitize) {
      sink = std::make_shared<kreg::spmd::CountingSink>();
      device_holder = std::make_unique<kreg::spmd::CheckedDevice>(
          kreg::spmd::DeviceProperties::tiny(4 << 20), nullptr, sink);
    } else {
      device_holder = std::make_unique<kreg::spmd::Device>(
          kreg::spmd::DeviceProperties::tiny(4 << 20));
    }
    kreg::spmd::Device& small_device = *device_holder;
    kreg::rng::Stream stream(7);
    Table table({"n", "faithful", "streaming"}, 24);
    for (std::size_t n : {256u, 512u, 700u, 1024u, 2048u}) {
      const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
      const kreg::BandwidthGrid grid =
          kreg::BandwidthGrid::default_for(data, 16);

      std::string faithful_cell;
      try {
        kreg::SpmdSelectorConfig cfg;
        // The paper-faithful per-row plan is the one with the n×n cliff; the
        // window default would sail through and hide the demonstration.
        cfg.algorithm = kreg::SweepAlgorithm::kPerRowSort;
        const auto r =
            kreg::SpmdGridSelector(small_device, cfg).select(data, grid);
        faithful_cell = "ok (h=" + Table::fmt_double(r.bandwidth, 3) + ")";
      } catch (const kreg::spmd::DeviceAllocError&) {
        faithful_cell = "ALLOC FAILURE";
      }

      std::string streaming_cell;
      try {
        kreg::SpmdSelectorConfig cfg;
        cfg.algorithm = kreg::SweepAlgorithm::kPerRowSort;
        cfg.streaming = true;
        const auto r =
            kreg::SpmdGridSelector(small_device, cfg).select(data, grid);
        streaming_cell = "ok (h=" + Table::fmt_double(r.bandwidth, 3) + ")";
      } catch (const kreg::spmd::DeviceAllocError&) {
        streaming_cell = "ALLOC FAILURE";
      }

      table.add_row({std::to_string(n), faithful_cell, streaming_cell});
    }
    table.print();
    std::printf(
        "\nThe faithful memory plan fails once 2n^2 floats approach the "
        "ledger, exactly like the\npaper's n > 20,000 failure on 4 GB; the "
        "streaming extension (the paper's stated future\nwork) removes the "
        "n x n matrices and keeps running.\n\n");
    std::printf("ledger peak: %.2f MB of %.2f MB\n",
                small_device.global_peak() / 1048576.0,
                small_device.properties().global_memory_bytes / 1048576.0);
    if (sanitize) {
      const std::size_t live = small_device.check_leaks();
      std::printf(
          "kreg-sanitizer: findings=%zu (races=%zu oob=%zu uninit=%zu "
          "leaks=%zu) live-allocations=%zu\n",
          small_device.sanitizer()->findings(),
          small_device.sanitizer()->races_detected(),
          small_device.sanitizer()->oobs_detected(),
          small_device.sanitizer()->uninits_detected(),
          small_device.sanitizer()->leaks_detected(), live);
      if (sink->total() != 0) {
        for (const auto& report : sink->reports()) {
          std::printf("  %s\n", report.format().c_str());
        }
        return 1;  // a clean selector run must produce zero findings
      }
    }
  }
  return 0;
}
