// Reproduces the paper's §IV-A / §V memory-capacity finding: "the program
// for estimating optimal bandwidth … does not work for sample sizes greater
// than 20,000" because two n×n single-precision matrices (plus three n×k
// matrices) exhaust the 4 GB device.
//
// Part 1 charts the predicted footprint against the 4 GB ledger across
// sample sizes, marking the paper's cliff. Part 2 demonstrates the failure
// live on a proportionally scaled-down device (so the bench itself does not
// need gigabytes), and shows the streaming extension sailing past the same
// limit.
// Part 3 charts the k-block streamed *window* sweep past the resident n×k
// cliff: on a 128 MB device the resident plan dies near n = 300,000 (k = 48
// doubles) while the streamed plan completes at n = 10⁶ with its ledger
// peak under the budget. Cells land in BENCH_stream.json with a peak-bytes
// ledger per run; the bench exits nonzero if any streamed peak exceeds the
// budget.
// With KREG_SPMD_SANITIZE set (any truthy value), Part 2 runs on a
// CheckedDevice with a counting sink — the sanitizer's log-and-count bench
// mode — and reports findings and leaked allocations alongside the ledger
// peak, demonstrating the instrumented device on the real selector. Part 3
// shrinks to its smallest cell (with an explicit k-block, so the streamed
// kernels still run instrumented) to stay fast.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"
#include "spmd/device.hpp"
#include "spmd/errors.hpp"
#include "spmd/sanitizer/checked_device.hpp"

namespace {

using kreg::bench::Table;

bool sanitize_requested() {
  const char* env = std::getenv("KREG_SPMD_SANITIZE");
  if (env == nullptr) {
    return false;
  }
  const std::string_view value(env);
  return !value.empty() && value != "0" && value != "off";
}

/// One row of the n-streamed sweep (Part 4).
struct StreamNCell {
  std::size_t n;
  std::size_t k;
  std::size_t budget_bytes;
  std::size_t carry_estimate;  // the 1-D plan's O(n) resident footprint
  bool kstream_ok;
  double kstream_s;  // < 0 when the O(n)-resident plan failed to allocate
  std::size_t kstream_peak;
  double nstream_s;
  std::size_t nstream_peak;
};

void write_stream_n_json(const std::vector<StreamNCell>& cells,
                         const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"stream_n_window_sweep\",\n  \"cells\": "
               "[\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const StreamNCell& c = cells[i];
    std::fprintf(f,
                 "    {\"n\": %zu, \"k\": %zu, \"budget_bytes\": %zu, "
                 "\"carry_estimate_bytes\": %zu, \"kstream\": \"%s\", "
                 "\"kstream_peak_bytes\": %zu, "
                 "\"nstream_s\": %.6e, \"nstream_peak_bytes\": %zu",
                 c.n, c.k, c.budget_bytes, c.carry_estimate,
                 c.kstream_ok ? "ok" : "alloc-failure", c.kstream_peak,
                 c.nstream_s, c.nstream_peak);
    if (c.kstream_s >= 0.0) {
      std::fprintf(f, ", \"kstream_s\": %.6e", c.kstream_s);
    }
    std::fprintf(f, "}%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu cells)\n", path, cells.size());
}

/// One row of the streamed-vs-resident sweep (Part 3).
struct StreamCell {
  std::size_t n;
  std::size_t k;
  std::size_t budget_bytes;
  std::size_t resident_estimate;
  bool resident_ok;
  double resident_s;  // < 0 when the resident plan failed to allocate
  std::size_t resident_peak;
  std::size_t k_block;
  double streamed_s;
  std::size_t streamed_peak;
};

void write_stream_json(const std::vector<StreamCell>& cells,
                       const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"stream_window_sweep\",\n  \"cells\": "
               "[\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const StreamCell& c = cells[i];
    std::fprintf(f,
                 "    {\"n\": %zu, \"k\": %zu, \"budget_bytes\": %zu, "
                 "\"resident_estimate_bytes\": %zu, \"resident\": \"%s\", "
                 "\"resident_peak_bytes\": %zu, \"k_block\": %zu, "
                 "\"streamed_s\": %.6e, \"streamed_peak_bytes\": %zu",
                 c.n, c.k, c.budget_bytes, c.resident_estimate,
                 c.resident_ok ? "ok" : "alloc-failure", c.resident_peak,
                 c.k_block, c.streamed_s, c.streamed_peak);
    if (c.resident_s >= 0.0) {
      std::fprintf(f, ", \"resident_s\": %.6e", c.resident_s);
    }
    std::fprintf(f, "}%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu cells)\n", path, cells.size());
}

}  // namespace

int main() {
  const std::size_t k = 50;

  kreg::bench::banner(
      "MEMORY LIMIT — predicted device footprint vs the 4 GB ledger (k=50, "
      "float)");
  {
    // The paper's capacity, via the one DeviceProperties budget query the
    // planners themselves size against — no ad-hoc 4 GB constant.
    const std::size_t capacity =
        kreg::spmd::DeviceProperties::tesla_s10().memory_budget().global_bytes;
    Table table({"n", "faithful (GB)", "streaming (GB)", "fits 4 GB?"}, 16);
    for (std::size_t n :
         {1000u, 5000u, 10000u, 15000u, 20000u, 23000u, 25000u, 40000u}) {
      const std::size_t faithful = kreg::SpmdGridSelector::estimated_bytes(
          n, k, kreg::Precision::kFloat, /*streaming=*/false);
      const std::size_t streaming = kreg::SpmdGridSelector::estimated_bytes(
          n, k, kreg::Precision::kFloat, /*streaming=*/true);
      table.add_row({std::to_string(n),
                     Table::fmt_double(faithful / 1073741824.0, 3),
                     Table::fmt_double(streaming / 1073741824.0, 4),
                     faithful <= capacity ? "yes" : "NO (paper's failure)"});
    }
    table.print();
  }

  kreg::bench::banner(
      "MEMORY LIMIT — live demonstration on a 1/1024-scale device (4 MB)");
  {
    // 4 MB device: the same arithmetic places the cliff near n = 700.
    // Under KREG_SPMD_SANITIZE the same runs go through the checked device
    // (log-and-count sink, so alloc failures still surface as exceptions).
    const bool sanitize = sanitize_requested();
    std::shared_ptr<kreg::spmd::CountingSink> sink;
    std::unique_ptr<kreg::spmd::Device> device_holder;
    if (sanitize) {
      sink = std::make_shared<kreg::spmd::CountingSink>();
      device_holder = std::make_unique<kreg::spmd::CheckedDevice>(
          kreg::spmd::DeviceProperties::tiny(4 << 20), nullptr, sink);
    } else {
      device_holder = std::make_unique<kreg::spmd::Device>(
          kreg::spmd::DeviceProperties::tiny(4 << 20));
    }
    kreg::spmd::Device& small_device = *device_holder;
    kreg::rng::Stream stream(7);
    Table table({"n", "faithful", "streaming"}, 24);
    for (std::size_t n : {256u, 512u, 700u, 1024u, 2048u}) {
      const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
      const kreg::BandwidthGrid grid =
          kreg::BandwidthGrid::default_for(data, 16);

      std::string faithful_cell;
      try {
        kreg::SpmdSelectorConfig cfg;
        // The paper-faithful per-row plan is the one with the n×n cliff; the
        // window default would sail through and hide the demonstration.
        cfg.algorithm = kreg::SweepAlgorithm::kPerRowSort;
        const auto r =
            kreg::SpmdGridSelector(small_device, cfg).select(data, grid);
        faithful_cell = "ok (h=" + Table::fmt_double(r.bandwidth, 3) + ")";
      } catch (const kreg::spmd::DeviceAllocError&) {
        faithful_cell = "ALLOC FAILURE";
      }

      std::string streaming_cell;
      try {
        kreg::SpmdSelectorConfig cfg;
        cfg.algorithm = kreg::SweepAlgorithm::kPerRowSort;
        cfg.streaming = true;
        const auto r =
            kreg::SpmdGridSelector(small_device, cfg).select(data, grid);
        streaming_cell = "ok (h=" + Table::fmt_double(r.bandwidth, 3) + ")";
      } catch (const kreg::spmd::DeviceAllocError&) {
        streaming_cell = "ALLOC FAILURE";
      }

      table.add_row({std::to_string(n), faithful_cell, streaming_cell});
    }
    table.print();
    std::printf(
        "\nThe faithful memory plan fails once 2n^2 floats approach the "
        "ledger, exactly like the\npaper's n > 20,000 failure on 4 GB; the "
        "streaming extension (the paper's stated future\nwork) removes the "
        "n x n matrices and keeps running.\n\n");
    std::printf("ledger peak: %.2f MB of %.2f MB\n",
                small_device.global_peak() / 1048576.0,
                small_device.properties().memory_budget().global_bytes /
                    1048576.0);
    if (sanitize) {
      const std::size_t live = small_device.check_leaks();
      std::printf(
          "kreg-sanitizer: findings=%zu (races=%zu oob=%zu uninit=%zu "
          "leaks=%zu) live-allocations=%zu\n",
          small_device.sanitizer()->findings(),
          small_device.sanitizer()->races_detected(),
          small_device.sanitizer()->oobs_detected(),
          small_device.sanitizer()->uninits_detected(),
          small_device.sanitizer()->leaks_detected(), live);
      if (sink->total() != 0) {
        for (const auto& report : sink->reports()) {
          std::printf("  %s\n", report.format().c_str());
        }
        return 1;  // a clean selector run must produce zero findings
      }
    }
  }

  kreg::bench::banner(
      "STREAMED WINDOW SWEEP — k-blocks past the resident n x k cliff "
      "(128 MB device, k=48, double)");
  {
    // The window sweep already dropped the n×n matrices; its wall is the
    // n×k residual matrix. On a 128 MB device with k = 48 doubles the
    // resident plan dies near n = 300,000 — the streamed plan tiles the
    // grid through one n×k_block buffer and keeps going to n = 10⁶. The
    // grid is narrow (1e-5 … 1e-4 on U(0,1) X) so admitted windows stay
    // small and the demonstration is memory-bound, not compute-bound.
    const bool sanitize = sanitize_requested();
    const std::size_t budget = 128ULL << 20;
    const std::size_t stream_k = 48;
    // The paper's device shape (512-thread blocks, 65,535-block grids — the
    // tiny() profile cannot launch 10⁶ threads) with global memory shrunk
    // to the 128 MB budget.
    kreg::spmd::DeviceProperties part3_props =
        kreg::spmd::DeviceProperties::tesla_s10();
    part3_props.name = "128 MB (simulated)";
    part3_props.global_memory_bytes = budget;
    kreg::rng::Stream stream(11);
    std::vector<StreamCell> cells;
    bool over_budget = false;
    Table table({"n", "resident est", "resident", "k_block", "streamed",
                 "peak/budget (MB)"},
                18);
    const std::vector<std::size_t> sizes =
        sanitize ? std::vector<std::size_t>{10'000}
                 : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
    for (const std::size_t n : sizes) {
      const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
      const kreg::BandwidthGrid grid(1e-5, 1e-4, stream_k);

      StreamCell cell{};
      cell.n = n;
      cell.k = stream_k;
      cell.budget_bytes = budget;
      cell.resident_estimate = kreg::SpmdGridSelector::estimated_bytes(
          n, stream_k, kreg::Precision::kDouble, false,
          kreg::SweepAlgorithm::kWindow);

      // Resident attempt (auto-tune off: the pre-streaming plan, alloc
      // failures included) on a fresh device so the peak is per-run.
      {
        kreg::spmd::Device device(part3_props);
        kreg::SpmdSelectorConfig cfg;
        cfg.precision = kreg::Precision::kDouble;
        cfg.stream.auto_tune = false;
        try {
          cell.resident_s = kreg::bench::time_once([&] {
            (void)kreg::SpmdGridSelector(device, cfg).select(data, grid);
          });
          cell.resident_ok = true;
        } catch (const kreg::spmd::DeviceAllocError&) {
          cell.resident_ok = false;
          cell.resident_s = -1.0;
        }
        cell.resident_peak = device.global_peak();
      }

      // Streamed run: the default auto-tuned plan sizes k_block to the
      // device budget (under the sanitizer, an explicit small block keeps
      // the instrumented run streaming on the shrunken cell).
      {
        kreg::spmd::Device device(part3_props);
        kreg::SpmdSelectorConfig cfg;
        cfg.precision = kreg::Precision::kDouble;
        if (sanitize) {
          cfg.stream.k_block = 12;
        }
        const kreg::StreamingPlan plan = kreg::resolve_streaming(
            cfg.stream, stream_k, cell.resident_estimate,
            kreg::SpmdGridSelector::estimated_streamed_bytes(
                n, 0, kreg::Precision::kDouble),
            kreg::SpmdGridSelector::estimated_streamed_bytes(
                n, 1, kreg::Precision::kDouble) -
                kreg::SpmdGridSelector::estimated_streamed_bytes(
                    n, 0, kreg::Precision::kDouble),
            device.properties().memory_budget().global_bytes);
        cell.k_block = plan.k_block;
        cell.streamed_s = kreg::bench::time_once([&] {
          (void)kreg::SpmdGridSelector(device, cfg).select(data, grid);
        });
        cell.streamed_peak = device.global_peak();
        if (cell.streamed_peak > budget) {
          over_budget = true;
        }
      }

      table.add_row(
          {std::to_string(n),
           Table::fmt_double(cell.resident_estimate / 1048576.0, 1) + " MB",
           cell.resident_ok
               ? "ok (" + Table::fmt_double(cell.resident_s, 2) + " s)"
               : "ALLOC FAILURE",
           std::to_string(cell.k_block),
           "ok (" + Table::fmt_double(cell.streamed_s, 2) + " s)",
           Table::fmt_double(cell.streamed_peak / 1048576.0, 1) + " / " +
               Table::fmt_double(budget / 1048576.0, 0)});
      cells.push_back(cell);
    }
    table.print();
    std::printf(
        "\nThe streamed sweep carries each observation's window state across "
        "k-blocks, so one\nn x k_block buffer (plus O(n) carry) replaces the "
        "resident n x k matrix — the profile\nis bitwise identical and the "
        "ledger peak stays under the budget.\n\n");
    write_stream_json(cells, "BENCH_stream.json");
    if (over_budget) {
      std::fprintf(stderr,
                   "FAIL: a streamed run's ledger peak exceeded the budget\n");
      return 1;
    }
  }

  kreg::bench::banner(
      "N-STREAMED WINDOW SWEEP — n-blocks past the O(n) carry cliff");
  {
    // Part 3's k-blocks shrink the residual matrix but still keep the
    // sorted arrays and window carry state — O(n) — resident, so a small
    // enough device kills even the k_block = 1 plan. n-blocking tiles the
    // observations too: each block uploads only a halo-padded slab and
    // carries its score totals in k×lane_dim accumulators, so the footprint
    // is O(slab + n_block·k_block + k·lane_dim) and the same narrow-grid
    // n = 10⁶ problem streams through a 24 MB device whose 80 MB carry
    // state could never fit. The profile stays bitwise identical.
    const bool sanitize = sanitize_requested();
    const std::size_t budget = sanitize ? (2ULL << 20) : (24ULL << 20);
    const std::size_t stream_k = 32;
    kreg::spmd::DeviceProperties part4_props =
        kreg::spmd::DeviceProperties::tesla_s10();
    part4_props.name = sanitize ? "2 MB (simulated)" : "24 MB (simulated)";
    part4_props.global_memory_bytes = budget;
    kreg::rng::Stream stream(13);
    std::vector<StreamNCell> cells;
    bool over_budget = false;
    Table table({"n", "carry est", "k-streamed", "n-streamed",
                 "peak/budget (MB)"},
                20);
    const std::vector<std::size_t> sizes =
        sanitize ? std::vector<std::size_t>{50'000}
                 : std::vector<std::size_t>{100'000, 1'000'000};
    for (const std::size_t n : sizes) {
      const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
      const kreg::BandwidthGrid grid(1e-5, 1e-4, stream_k);

      StreamNCell cell{};
      cell.n = n;
      cell.k = stream_k;
      cell.budget_bytes = budget;
      cell.carry_estimate = kreg::SpmdGridSelector::estimated_streamed_bytes(
          n, 1, kreg::Precision::kDouble);

      // The 1-D plan (explicit k_block pins the n-resident streamed path):
      // its O(n) carry state must allocate up front, so the small device
      // rejects it — the cliff this part charts.
      {
        kreg::spmd::Device device(part4_props);
        kreg::SpmdSelectorConfig cfg;
        cfg.precision = kreg::Precision::kDouble;
        cfg.stream.k_block = 1;
        try {
          cell.kstream_s = kreg::bench::time_once([&] {
            (void)kreg::SpmdGridSelector(device, cfg).select(data, grid);
          });
          cell.kstream_ok = true;
        } catch (const kreg::spmd::DeviceAllocError&) {
          cell.kstream_ok = false;
          cell.kstream_s = -1.0;
        }
        cell.kstream_peak = device.global_peak();
      }

      // The auto-tuned 2-D plan halves n_block until one halo-padded tile
      // fits, then completes with the ledger peak under the budget.
      {
        kreg::spmd::Device device(part4_props);
        kreg::SpmdSelectorConfig cfg;
        cfg.precision = kreg::Precision::kDouble;
        cell.nstream_s = kreg::bench::time_once([&] {
          (void)kreg::SpmdGridSelector(device, cfg).select(data, grid);
        });
        cell.nstream_peak = device.global_peak();
        if (cell.nstream_peak > budget) {
          over_budget = true;
        }
      }

      table.add_row(
          {std::to_string(n),
           Table::fmt_double(cell.carry_estimate / 1048576.0, 1) + " MB",
           cell.kstream_ok
               ? "ok (" + Table::fmt_double(cell.kstream_s, 2) + " s)"
               : "ALLOC FAILURE",
           "ok (" + Table::fmt_double(cell.nstream_s, 2) + " s)",
           Table::fmt_double(cell.nstream_peak / 1048576.0, 1) + " / " +
               Table::fmt_double(budget / 1048576.0, 0)});
      cells.push_back(cell);
    }
    table.print();
    std::printf(
        "\nn-blocking uploads one halo-padded slab of the sorted arrays at a "
        "time and carries the\nper-bandwidth score lanes across blocks, so "
        "nothing O(n) ever sits on the device — and\nthe lane-carried "
        "reduction keeps the profile bitwise identical to the resident "
        "sweep.\n\n");
    write_stream_n_json(cells, "BENCH_stream_n.json");
    if (over_budget) {
      std::fprintf(stderr,
                   "FAIL: an n-streamed run's ledger peak exceeded the "
                   "budget\n");
      return 1;
    }
  }
  return 0;
}
