// Bench panel for the two non-bandwidth workloads on the shared window
// machinery: k-NN fast LOOCV (grid axis = neighbour count) and one-sided
// CV (asymmetric admission window). For each (n, grid size) cell the fast
// sequential sweep and the device sweep are timed against the naive
// O(n²·|grid|) reference — the same fast-vs-naive axis Table II charts for
// the bandwidth sweep — and the per-cell speedups land in
// BENCH_knn_oscv.json in the working directory.
//
//   KREG_BENCH_FULL=1   adds the n = 10,000 row (default stops at 4,000)
//   KREG_BENCH_REPS=N   timing repetitions per cell (median)
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "core/grid.hpp"
#include "core/knn_sweep.hpp"
#include "core/oscv_sweep.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "spmd/device.hpp"

namespace {

struct Cell {
  const char* workload;  // "knn" | "oscv"
  const char* backend;   // "naive" | "fast" | "device"
  std::size_t n;
  std::size_t grid;
  double seconds;
  double speedup;  // vs naive at the same (workload, n, grid)
};

void write_json(const std::vector<Cell>& cells, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"knn_oscv\",\n  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"backend\": \"%s\", "
                 "\"n\": %zu, \"grid\": %zu, \"seconds\": %.6e, "
                 "\"speedup_vs_naive\": %.3f}%s\n",
                 c.workload, c.backend, c.n, c.grid, c.seconds, c.speedup,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu cells)\n", path, cells.size());
}

}  // namespace

int main() {
  using kreg::bench::Table;
  const std::size_t reps = kreg::bench::repetitions();
  kreg::rng::Stream stream(7171);
  std::vector<Cell> cells;

  std::vector<std::size_t> sizes = {1000, 4000};
  if (kreg::bench::full_mode()) {
    sizes.push_back(10000);
  }
  const std::size_t grid_sizes[] = {8, 32};

  for (const std::size_t n : sizes) {
    const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
    for (const std::size_t g : grid_sizes) {
      // ---- k-NN LOOCV ----------------------------------------------------
      const std::vector<std::size_t> kgrid =
          kreg::default_neighbor_grid(n, g);
      const double knn_naive = kreg::bench::time_median(
          [&] { (void)kreg::knn_cv_profile_naive(data, kgrid); }, reps);
      const double knn_fast = kreg::bench::time_median(
          [&] { (void)kreg::knn_cv_profile(data, kgrid); }, reps);
      kreg::spmd::Device knn_dev;
      const double knn_device = kreg::bench::time_median(
          [&] { (void)kreg::knn_cv_profile_device(knn_dev, data, kgrid); },
          reps);
      cells.push_back({"knn", "naive", n, kgrid.size(), knn_naive, 1.0});
      cells.push_back(
          {"knn", "fast", n, kgrid.size(), knn_fast, knn_naive / knn_fast});
      cells.push_back({"knn", "device", n, kgrid.size(), knn_device,
                       knn_naive / knn_device});

      // ---- OSCV ----------------------------------------------------------
      const kreg::BandwidthGrid bgrid =
          kreg::BandwidthGrid::default_for(data, g);
      const kreg::KernelType kernel = kreg::KernelType::kEpanechnikov;
      const double oscv_naive = kreg::bench::time_median(
          [&] {
            (void)kreg::oscv_profile_naive(data, bgrid.values(), kernel);
          },
          reps);
      const double oscv_fast = kreg::bench::time_median(
          [&] { (void)kreg::oscv_profile(data, bgrid.values(), kernel); },
          reps);
      kreg::spmd::Device oscv_dev;
      const double oscv_device = kreg::bench::time_median(
          [&] {
            (void)kreg::oscv_profile_device(oscv_dev, data, bgrid.values(),
                                            kernel);
          },
          reps);
      cells.push_back({"oscv", "naive", n, bgrid.size(), oscv_naive, 1.0});
      cells.push_back({"oscv", "fast", n, bgrid.size(), oscv_fast,
                       oscv_naive / oscv_fast});
      cells.push_back({"oscv", "device", n, bgrid.size(), oscv_device,
                       oscv_naive / oscv_device});

      kreg::bench::banner("KNN + OSCV — n = " + std::to_string(n) +
                          ", grid = " + std::to_string(g));
      Table table({"workload", "naive (s)", "fast (s)", "device (s)",
                   "fast speedup", "device speedup"},
                  14);
      table.add_row({"knn", Table::fmt_seconds(knn_naive),
                     Table::fmt_seconds(knn_fast),
                     Table::fmt_seconds(knn_device),
                     Table::fmt_double(knn_naive / knn_fast, 1) + "x",
                     Table::fmt_double(knn_naive / knn_device, 1) + "x"});
      table.add_row({"oscv", Table::fmt_seconds(oscv_naive),
                     Table::fmt_seconds(oscv_fast),
                     Table::fmt_seconds(oscv_device),
                     Table::fmt_double(oscv_naive / oscv_fast, 1) + "x",
                     Table::fmt_double(oscv_naive / oscv_device, 1) + "x"});
      table.print();
    }
  }

  write_json(cells, "BENCH_knn_oscv.json");
  return 0;
}
