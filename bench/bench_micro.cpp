// Google-benchmark microbenchmarks for the performance-critical primitives:
// the iterative quicksort (plain and with payload), the device reductions,
// the naive CV objective, and the per-observation sorted sweep.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "core/kreg.hpp"
#include "sort/introsort.hpp"
#include "sort/iterative_quicksort.hpp"
#include "spmd/device.hpp"
#include "spmd/reduce.hpp"
#include "spmd/scan.hpp"

namespace {

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  kreg::rng::Stream s(seed);
  return s.uniforms(n);
}

void BM_IterativeQuicksort(benchmark::State& state) {
  const auto base = random_values(state.range(0), 1);
  std::vector<double> work(base.size());
  for (auto _ : state) {
    work = base;
    kreg::sort::iterative_quicksort(std::span<double>(work));
    benchmark::DoNotOptimize(work.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IterativeQuicksort)->Range(1 << 8, 1 << 15)->Complexity();

void BM_IterativeQuicksortKv(benchmark::State& state) {
  const auto base = random_values(state.range(0), 2);
  const auto payload_base = random_values(state.range(0), 3);
  std::vector<double> keys(base.size());
  std::vector<double> payload(base.size());
  for (auto _ : state) {
    keys = base;
    payload = payload_base;
    kreg::sort::iterative_quicksort_kv(std::span<double>(keys),
                                       std::span<double>(payload));
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IterativeQuicksortKv)->Range(1 << 8, 1 << 15)->Complexity();

void BM_Introsort(benchmark::State& state) {
  const auto base = random_values(state.range(0), 4);
  std::vector<double> work(base.size());
  for (auto _ : state) {
    work = base;
    kreg::sort::introsort(std::span<double>(work));
    benchmark::DoNotOptimize(work.data());
  }
}
BENCHMARK(BM_Introsort)->Range(1 << 8, 1 << 15);

void BM_DeviceReduceSum(benchmark::State& state) {
  kreg::spmd::Device device;
  const auto host = random_values(state.range(0), 5);
  auto buf = device.alloc_global<double>(host.size());
  device.copy_to_device(buf, std::span<const double>(host));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kreg::spmd::reduce_sum<double>(device, buf.span()));
  }
}
BENCHMARK(BM_DeviceReduceSum)->Range(1 << 10, 1 << 18);

void BM_DeviceReduceSumInterleaved(benchmark::State& state) {
  // Harris reduction #1 (interleaved addressing) vs the sequential schedule
  // in BM_DeviceReduceSum — the paper's reduction-optimization lineage.
  kreg::spmd::Device device;
  const auto host = random_values(state.range(0), 5);
  auto buf = device.alloc_global<double>(host.size());
  device.copy_to_device(buf, std::span<const double>(host));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kreg::spmd::reduce_sum<double>(
        device, buf.span(), 512, kreg::spmd::ReduceVariant::kInterleaved));
  }
}
BENCHMARK(BM_DeviceReduceSumInterleaved)->Range(1 << 10, 1 << 18);

void BM_DeviceInclusiveScan(benchmark::State& state) {
  kreg::spmd::Device device;
  const auto host = random_values(state.range(0), 12);
  auto buf = device.alloc_global<double>(host.size());
  for (auto _ : state) {
    state.PauseTiming();
    device.copy_to_device(buf, std::span<const double>(host));
    state.ResumeTiming();
    kreg::spmd::inclusive_scan<double>(device, buf.span());
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_DeviceInclusiveScan)->Range(1 << 10, 1 << 16);

void BM_DeviceReduceArgmin(benchmark::State& state) {
  kreg::spmd::Device device;
  const auto host = random_values(state.range(0), 6);
  auto buf = device.alloc_global<double>(host.size());
  device.copy_to_device(buf, std::span<const double>(host));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kreg::spmd::reduce_argmin<double>(device, buf.span()));
  }
}
BENCHMARK(BM_DeviceReduceArgmin)->Range(1 << 10, 1 << 18);

void BM_CvScoreNaive(benchmark::State& state) {
  kreg::rng::Stream s(7);
  const auto data = kreg::data::paper_dgp(state.range(0), s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kreg::cv_score(data, 0.1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CvScoreNaive)->Range(1 << 7, 1 << 11)->Complexity();

void BM_SweepObservation(benchmark::State& state) {
  kreg::rng::Stream s(8);
  const auto data = kreg::data::paper_dgp(state.range(0), s);
  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, 50);
  const auto poly = kreg::sweep_polynomial(kreg::KernelType::kEpanechnikov);
  kreg::SweepWorkspace<double> workspace;
  std::vector<double> out(grid.size());
  std::size_t i = 0;
  for (auto _ : state) {
    kreg::sweep_observation<double>(data.x, data.y, i % data.size(),
                                    grid.values(), poly, workspace, out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SweepObservation)->Range(1 << 8, 1 << 13)->Complexity();

void BM_SweepFullProfile(benchmark::State& state) {
  kreg::rng::Stream s(9);
  const auto data = kreg::data::paper_dgp(state.range(0), s);
  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kreg::sweep_cv_profile(
        data, grid.values(), kreg::KernelType::kEpanechnikov));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SweepFullProfile)->Range(1 << 7, 1 << 11)->Complexity();

}  // namespace

BENCHMARK_MAIN();
