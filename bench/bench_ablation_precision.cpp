// Ablation (paper §IV-A): "only single-precision floating point numbers
// are used in the computation" — for memory and early-GPU compatibility.
// Compares the float and double paths of the sorted sweep and the SPMD
// selector: time, memory footprint, selected bandwidth, and the worst-case
// CV-profile deviation.
#include <cmath>
#include <cstdio>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"
#include "spmd/device.hpp"

namespace {

double max_relative_deviation(const std::vector<double>& a,
                              const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max(1e-12, std::abs(b[i]));
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

}  // namespace

int main() {
  using kreg::bench::Table;
  const std::size_t n = kreg::bench::full_mode() ? 10000 : 4000;
  const std::size_t k = 50;
  const std::size_t reps = kreg::bench::repetitions();

  kreg::rng::Stream stream(77);
  const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, k);

  kreg::bench::banner("ABLATION — single vs double precision (n=" +
                      std::to_string(n) + ", k=50)");

  // Host sweep.
  const kreg::SortedGridSelector float_host(kreg::KernelType::kEpanechnikov,
                                            kreg::Precision::kFloat);
  const kreg::SortedGridSelector double_host(kreg::KernelType::kEpanechnikov,
                                             kreg::Precision::kDouble);
  kreg::SelectionResult rf;
  kreg::SelectionResult rd;
  const double tf = kreg::bench::time_median(
      [&] { rf = float_host.select(data, grid); }, reps);
  const double td = kreg::bench::time_median(
      [&] { rd = double_host.select(data, grid); }, reps);

  // Device path.
  kreg::spmd::Device device;
  kreg::SpmdSelectorConfig fc;
  fc.precision = kreg::Precision::kFloat;
  kreg::SpmdSelectorConfig dc;
  dc.precision = kreg::Precision::kDouble;
  kreg::SelectionResult rdf;
  kreg::SelectionResult rdd;
  const double tdf = kreg::bench::time_median(
      [&] { rdf = kreg::SpmdGridSelector(device, fc).select(data, grid); },
      reps);
  const double tdd = kreg::bench::time_median(
      [&] { rdd = kreg::SpmdGridSelector(device, dc).select(data, grid); },
      reps);

  Table table({"path", "precision", "time (s)", "device bytes", "selected h"},
              15);
  table.add_row({"host sweep", "float", Table::fmt_seconds(tf), "-",
                 Table::fmt_double(rf.bandwidth, 4)});
  table.add_row({"host sweep", "double", Table::fmt_seconds(td), "-",
                 Table::fmt_double(rd.bandwidth, 4)});
  table.add_row({"SPMD device", "float", Table::fmt_seconds(tdf),
                 std::to_string(kreg::SpmdGridSelector::estimated_bytes(
                     n, k, kreg::Precision::kFloat, false)),
                 Table::fmt_double(rdf.bandwidth, 4)});
  table.add_row({"SPMD device", "double", Table::fmt_seconds(tdd),
                 std::to_string(kreg::SpmdGridSelector::estimated_bytes(
                     n, k, kreg::Precision::kDouble, false)),
                 Table::fmt_double(rdd.bandwidth, 4)});
  table.print();

  std::printf("\nmax relative CV-profile deviation, float vs double:\n");
  std::printf("  host sweep : %.3e\n",
              max_relative_deviation(rf.scores, rd.scores));
  std::printf("  SPMD device: %.3e\n",
              max_relative_deviation(rdf.scores, rdd.scores));
  std::printf(
      "\nSingle precision halves the device footprint (the paper's "
      "motivation) and, at these\nscales, perturbs CV scores only in the "
      "5th-6th digit — the selected bandwidth is stable.\n\n");
  return 0;
}
