// Extension bench: the paper's §II claim that the sorting-based CV
// machinery "can be applied to … optimal bandwidth selection for kernel
// density estimation", quantified. Compares the direct O(k·n²) LSCV
// evaluation with the sorted-sweep O(n² log n) version (host and device).
#include <cstdio>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"
#include "spmd/device.hpp"

int main() {
  using kreg::bench::Table;
  const std::size_t reps = kreg::bench::repetitions();

  kreg::rng::Stream stream(555);

  kreg::bench::banner(
      "KDE LSCV — direct vs sorted sweep vs device sweep, scaling in k "
      "(n=1500)");
  {
    std::vector<double> xs(1500);
    for (auto& x : xs) {
      x = stream.uniform() < 0.5 ? stream.gaussian(-1.0, 0.4)
                                 : stream.gaussian(1.0, 0.6);
    }
    kreg::spmd::Device device;
    Table table({"k", "direct (s)", "sweep (s)", "device (s)", "same h?"}, 14);
    for (std::size_t k : {5u, 25u, 100u, 400u}) {
      const kreg::BandwidthGrid grid(0.02, 1.5, k);
      kreg::SelectionResult direct;
      kreg::SelectionResult swept;
      kreg::SelectionResult dev;
      const double t_direct = kreg::bench::time_median(
          [&] { direct = kreg::kde_select_grid(xs, grid); }, reps);
      const double t_sweep = kreg::bench::time_median(
          [&] { swept = kreg::kde_select_sweep(xs, grid); }, reps);
      const double t_device = kreg::bench::time_median(
          [&] { dev = kreg::SpmdKdeSelector(device).select(xs, grid); },
          reps);
      const bool same = direct.bandwidth == swept.bandwidth &&
                        swept.bandwidth == dev.bandwidth;
      table.add_row({std::to_string(k), Table::fmt_seconds(t_direct),
                     Table::fmt_seconds(t_sweep), Table::fmt_seconds(t_device),
                     same ? "yes" : "NO"});
    }
    table.print();
    std::printf(
        "\nThe direct criterion pays O(n^2) per bandwidth; the sweep pays "
        "one sort per\nobservation regardless of k — the regression result "
        "transferred to KDE.\n\n");
  }
  return 0;
}
