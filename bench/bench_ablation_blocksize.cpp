// Ablation (paper §IV-B): "the block size and grid size were selected to
// minimize the run-time … the fastest performance was found with threads
// per block set to 512, the maximum possible on the GPU being used."
// Sweeps threads-per-block for the SPMD selector at fixed (n, k).
#include <cstdio>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"
#include "spmd/device.hpp"

int main() {
  using kreg::bench::Table;
  const std::size_t n = kreg::bench::full_mode() ? 10000 : 3000;
  const std::size_t k = 50;
  const std::size_t reps = kreg::bench::repetitions();

  kreg::bench::banner("ABLATION — threads per block (SPMD selector, n=" +
                      std::to_string(n) + ", k=50)");

  kreg::rng::Stream stream(99);
  const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
  const kreg::BandwidthGrid grid = kreg::BandwidthGrid::default_for(data, k);
  kreg::spmd::Device device;

  Table table({"threads/block", "blocks", "time (s)", "selected h"}, 16);
  for (std::size_t tpb : {32u, 64u, 128u, 256u, 512u}) {
    kreg::SpmdSelectorConfig cfg;
    cfg.threads_per_block = tpb;
    const kreg::SpmdGridSelector selector(device, cfg);
    double h = 0.0;
    const double t = kreg::bench::time_median(
        [&] { h = selector.select(data, grid).bandwidth; }, reps);
    const std::size_t blocks = (n + tpb - 1) / tpb;
    table.add_row({std::to_string(tpb), std::to_string(blocks),
                   Table::fmt_seconds(t), Table::fmt_double(h, 4)});
  }
  table.print();
  std::printf(
      "\nSelected bandwidth is identical across block sizes (execution "
      "config never changes\nresults); timing differences reflect "
      "scheduling granularity on the simulated device.\n\n");
  return 0;
}
