// Extension bench: multivariate bandwidth selection (paper §III's "grid or
// matrix in multivariate contexts"). Compares three searches on a 2-D
// product-kernel regression:
//   - Cartesian grid search: k^p cells, each an O(n²p) CV evaluation;
//   - coordinate descent: cycles of per-dimension k-point sweeps;
//   - ray sweep: the paper's sorting trick along h = c·r — all k scales
//     for one sort per observation.
#include <cstdio>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"

int main() {
  using kreg::bench::Table;
  const std::size_t reps = kreg::bench::repetitions();
  kreg::rng::Stream stream(777);

  kreg::bench::banner(
      "MULTIVARIATE — Cartesian vs coordinate descent vs ray sweep (2-D)");
  Table table({"n", "k/dim", "cartesian (s)", "coord-desc (s)",
               "ray sweep (s)", "CV cart", "CV cd", "CV ray"},
              15);
  for (std::size_t n : {200u, 400u, 800u}) {
    const kreg::data::MDataset data =
        kreg::data::multivariate_dgp(n, 2, stream);
    const std::size_t k = 12;
    const auto grids = kreg::default_grids_for(data, k);
    const auto ratios = kreg::default_ray_ratios(data);
    const kreg::BandwidthGrid scales(1.0 / static_cast<double>(k), 1.0, k);

    kreg::MultiSelectionResult cart;
    kreg::MultiSelectionResult cd;
    kreg::MultiSelectionResult ray;
    const double t_cart = kreg::bench::time_median(
        [&] { cart = kreg::multi_grid_search(data, grids); }, reps);
    const double t_cd = kreg::bench::time_median(
        [&] { cd = kreg::multi_coordinate_descent(data, grids); }, reps);
    const double t_ray = kreg::bench::time_median(
        [&] { ray = kreg::multi_ray_select(data, ratios, scales); }, reps);

    table.add_row({std::to_string(n), std::to_string(k),
                   Table::fmt_seconds(t_cart), Table::fmt_seconds(t_cd),
                   Table::fmt_seconds(t_ray), Table::fmt_double(cart.cv_score, 5),
                   Table::fmt_double(cd.cv_score, 5),
                   Table::fmt_double(ray.cv_score, 5)});
  }
  table.print();
  std::printf(
      "\nThe ray sweep searches a 1-D slice (fixed smoothing ratios) at a "
      "fraction of the\nCartesian cost; coordinate descent refines per-"
      "dimension ratios when they matter.\n\n");
  return 0;
}
