// Roofline-style bench for the batched (SELL-C-σ) window-sweep execution
// layer: elements/s of the scalar host sweep vs the lane-batched kernels
// across lane widths C ∈ {4, 8, 16} and σ-policies (none / length /
// position-length), with an estimated memory-bandwidth figure per cell so
// the vector speedup can be read against the streaming roofline. One
// "element" is one unit of sweep work: an admitted observation (one pass
// of the moment-sum m-loop) or one per-(observation, bandwidth)
// recombination — both counted exactly from the admission-window lengths,
// not sampled. Batched cells also report the contiguous-run rate (the
// fraction of phase-2 steps served by the block-load/transpose fast path
// instead of a gather) and the resolved software-prefetch distance. Cells
// land in BENCH_vector.json in the working directory.
//
//   KREG_BENCH_FULL=1     adds the n = 10⁶ row (default stops at 10⁵)
//   KREG_BENCH_REPS=N     timing repetitions per cell (median)
//   KREG_PREFETCH_DIST=N  software-prefetch distance for the batched cells
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"

namespace {

struct Cell {
  std::size_t n;
  std::size_t k;
  const char* kernel;
  std::size_t lane_width;  // 0 = the scalar reference sweep
  const char* sigma_policy;
  std::size_t prefetch;
  double contig_rate;  // fraction of phase-2 steps on the transpose path
  double seconds;
  double elements_per_s;
  double est_gbps;
  double speedup;  // vs the scalar reference at the same (n, k, kernel)
};

void write_json(const std::vector<Cell>& cells, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"vector_sweep\",\n  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"n\": %zu, \"k\": %zu, \"kernel\": \"%s\", "
                 "\"lane_width\": %zu, "
                 "\"sigma_policy\": \"%s\", \"prefetch_distance\": %zu, "
                 "\"contig_rate\": %.4f, \"seconds\": %.6e, "
                 "\"elements_per_s\": %.6e, \"est_gbps\": %.3f, "
                 "\"speedup_vs_scalar\": %.3f}%s\n",
                 c.n, c.k, c.kernel, c.lane_width, c.sigma_policy, c.prefetch,
                 c.contig_rate, c.seconds, c.elements_per_s, c.est_gbps,
                 c.speedup, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu cells)\n", path, cells.size());
}

}  // namespace

int main() {
  using kreg::bench::Table;
  const std::size_t reps = kreg::bench::repetitions();
  const std::size_t k = 50;
  kreg::rng::Stream stream(2024);
  std::vector<Cell> cells;

  const std::size_t prefetch =
      kreg::resolve_prefetch_distance(kreg::kPrefetchFromEnv);

  std::vector<std::size_t> sizes = {100000};
  if (kreg::bench::full_mode()) {
    sizes.push_back(1000000);
  }

  for (const std::size_t n : sizes) {
    const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
    // A narrow grid keeps the mean admission window at ~2% of the sample
    // (≈ 2 h_max n for the paper DGP's unit-range X), so the total sweep
    // work stays O(n · window), not O(n²), at every n on this axis.
    const double h_max = 0.01;
    const kreg::BandwidthGrid grid(h_max / static_cast<double>(k), h_max, k);

    // Exact element count: every observation admits exactly its window
    // length at h_max across the whole ascending grid (the two-pointer
    // sweep admits each element once), plus one recombination per
    // (observation, bandwidth).
    const auto sorted = kreg::sort_dataset<double>(data.x, data.y);
    const std::vector<std::size_t> lengths =
        kreg::admission_window_lengths<double>(
            std::span<const double>(sorted.x), h_max);
    const double admissions = static_cast<double>(
        std::accumulate(lengths.begin(), lengths.end(), std::size_t{0}));
    const double elements = admissions + static_cast<double>(n * k);
    // Streaming-traffic estimate: each admission reads x and y once; each
    // recombination writes one residual. Carried SoA state lives in cache,
    // so this is the compulsory-traffic floor the roofline compares
    // against.
    const double bytes =
        admissions * 2.0 * sizeof(double) +
        static_cast<double>(n * k) * sizeof(double);

    // Three kernels span the arithmetic-intensity axis of the roofline:
    // uniform (1-term recombination, purely gather-bound), Epanechnikov
    // (3-term, gather-bound) and triweight (7-term,
    // vector-arithmetic-bound — where lane batching pays most).
    const struct {
      kreg::KernelType type;
      const char* name;
    } kernels[] = {{kreg::KernelType::kUniform, "uniform"},
                   {kreg::KernelType::kEpanechnikov, "epanechnikov"},
                   {kreg::KernelType::kTriweight, "triweight"}};

    const struct {
      kreg::SigmaPolicy policy;
      const char* name;
      const char* label;  // row suffix in the printed table
    } policies[] = {
        {kreg::SigmaPolicy::kNone, "none", ""},
        {kreg::SigmaPolicy::kLength, "length", " +len"},
        {kreg::SigmaPolicy::kPositionLength, "position-length", " +pos"}};

    for (const auto& kernel : kernels) {
      kreg::bench::banner("VECTOR SWEEP — n = " + std::to_string(n) +
                          ", k = " + std::to_string(k) + ", " + kernel.name +
                          ", " +
                          std::to_string(static_cast<std::size_t>(admissions)) +
                          " admissions");
      Table table(
          {"config", "time (s)", "Melem/s", "est GB/s", "contig", "speedup"},
          12);

      const double t_scalar = kreg::bench::time_median(
          [&] {
            (void)kreg::window_cv_profile_tiled(data, grid.values(),
                                                kernel.type);
          },
          reps);
      table.add_row({"scalar", Table::fmt_seconds(t_scalar),
                     Table::fmt_double(elements / t_scalar / 1e6, 1),
                     Table::fmt_double(bytes / t_scalar / 1e9, 2), "-",
                     "1.0x"});
      cells.push_back({n, k, kernel.name, 0, "none", 0, 0.0, t_scalar,
                       elements / t_scalar, bytes / t_scalar / 1e9, 1.0});

      for (const std::size_t width : {4u, 8u, 16u}) {
        for (const auto& pol : policies) {
          kreg::BatchedSweep batched;
          batched.lane_width = width;
          batched.sigma = pol.policy;
          batched.prefetch_distance = prefetch;
          kreg::BatchRunStats stats;
          const double t = kreg::bench::time_median(
              [&] {
                stats = {};
                (void)kreg::window_cv_profile_batched(
                    data, grid.values(), kernel.type,
                    kreg::Precision::kDouble, batched, {}, nullptr, &stats);
              },
              reps);
          const std::string label = "C=" + std::to_string(width) + pol.label;
          table.add_row(
              {label, Table::fmt_seconds(t),
               Table::fmt_double(elements / t / 1e6, 1),
               Table::fmt_double(bytes / t / 1e9, 2),
               Table::fmt_double(100.0 * stats.contig_rate(), 1) + "%",
               Table::fmt_double(t_scalar / t, 2) + "x"});
          cells.push_back({n, k, kernel.name, width, pol.name, prefetch,
                           stats.contig_rate(), t, elements / t,
                           bytes / t / 1e9, t_scalar / t});
        }
      }
      table.print();
    }
  }

  std::printf(
      "\nelements/s counts admissions + recombinations exactly; est GB/s is "
      "the compulsory streaming traffic (x/y reads + residual writes) over "
      "the same wall time. The batched kernels' margin over scalar at equal "
      "traffic is vector (SIMD) throughput, not bandwidth; the contig "
      "column is the share of lane-resume steps served by the "
      "contiguous-run transpose fast path instead of gathers.\n");
  write_json(cells, "BENCH_vector.json");
  return 0;
}
