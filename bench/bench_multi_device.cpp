// Extension bench: the paper's test machine carried two Tesla S10 GPUs but
// the published program used one. Splitting the observation rows across
// devices nearly halves the per-device footprint (X/Y are replicated, the
// n×n matrices shard), raising the feasible sample size by ~sqrt(2) — and
// the slices are independent, so real hardware would run them concurrently.
#include <cstdio>

#include "common/bench_util.hpp"
#include "core/kreg.hpp"
#include "spmd/device.hpp"
#include "spmd/errors.hpp"

int main() {
  using kreg::bench::Table;

  kreg::bench::banner(
      "MULTI-DEVICE — per-device footprint at k=50, float (4 GB ledger "
      "each)");
  {
    Table table({"n", "1 device (GB)", "2 devices (GB)", "feasible on"}, 16);
    const std::size_t cap = 4ULL * 1024 * 1024 * 1024;
    for (std::size_t n : {10000u, 20000u, 25000u, 28000u, 33000u, 40000u}) {
      const std::size_t one = kreg::SpmdGridSelector::estimated_bytes(
          n, 50, kreg::Precision::kFloat, false);
      const std::size_t two =
          kreg::MultiDeviceGridSelector::estimated_bytes_per_device(
              n, 50, 2, kreg::Precision::kFloat, false);
      std::string feasible = "neither";
      if (one <= cap) {
        feasible = "1 or 2 devices";
      } else if (two <= cap) {
        feasible = "2 devices only";
      }
      table.add_row({std::to_string(n), Table::fmt_double(one / 1073741824.0, 2),
                     Table::fmt_double(two / 1073741824.0, 2), feasible});
    }
    table.print();
    std::printf(
        "\nTwo devices push the paper's n <= 20,000 ceiling to ~28,000 "
        "without any algorithm change.\n");
  }

  kreg::bench::banner(
      "MULTI-DEVICE — live capacity demo on 1 MB devices + timing");
  {
    kreg::rng::Stream stream(9);
    const std::size_t reps = kreg::bench::repetitions();
    Table table({"n", "1 device", "2 devices", "time 1 (s)", "time 2 (s)"},
                14);
    for (std::size_t n : {300u, 512u, 640u, 900u}) {
      const kreg::data::Dataset data = kreg::data::paper_dgp(n, stream);
      const kreg::BandwidthGrid grid =
          kreg::BandwidthGrid::default_for(data, 16);
      kreg::SpmdSelectorConfig cfg;  // float

      kreg::spmd::Device lone(kreg::spmd::DeviceProperties::tiny(1 << 20));
      std::string one_cell = "ok";
      std::string t_one = "-";
      try {
        const double t = kreg::bench::time_median(
            [&] { (void)kreg::SpmdGridSelector(lone, cfg).select(data, grid); },
            reps);
        t_one = Table::fmt_seconds(t);
      } catch (const kreg::spmd::DeviceAllocError&) {
        one_cell = "ALLOC FAILURE";
      }

      kreg::spmd::Device a(kreg::spmd::DeviceProperties::tiny(1 << 20));
      kreg::spmd::Device b(kreg::spmd::DeviceProperties::tiny(1 << 20));
      std::string two_cell = "ok";
      std::string t_two = "-";
      try {
        const double t = kreg::bench::time_median(
            [&] {
              (void)kreg::MultiDeviceGridSelector({&a, &b}, cfg)
                  .select(data, grid);
            },
            reps);
        t_two = Table::fmt_seconds(t);
      } catch (const kreg::spmd::DeviceAllocError&) {
        two_cell = "ALLOC FAILURE";
      }

      table.add_row({std::to_string(n), one_cell, two_cell, t_one, t_two});
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
