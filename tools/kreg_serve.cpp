// kreg_serve — the bandwidth-selection daemon.
//
// Listens on a UNIX-domain stream socket and serves the line protocol of
// src/serve/protocol.hpp: clients submit `select ...` requests, the async
// scheduler (src/serve/scheduler.hpp) admits them against the simulated
// device's memory ledger, co-schedules compatible small jobs onto one
// launch, and answers from the profile cache when the same
// (dataset, grid, estimator) has been selected before.
//
// Usage:
//   kreg_serve [--socket PATH] [--workers N] [--cache-budget BYTES|off]
//              [--device-budget BYTES] [--devices N] [--deterministic]
//
// Defaults: --socket /tmp/kreg_serve.sock; --workers from
// KREG_SERVE_WORKERS (else hardware concurrency); --cache-budget from
// KREG_SERVE_CACHE_BUDGET (else 64 MiB); --device-budget the 4 GiB paper
// device. Knob validation is strict: empty, zero, or overflowing values
// are rejected at startup, not discovered mid-serve.
#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>

#include "core/streaming.hpp"
#include "serve/knobs.hpp"
#include "serve/server.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--workers N]\n"
               "          [--cache-budget BYTES|off] [--device-budget BYTES]\n"
               "          [--devices N] [--deterministic]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kreg::serve;
  ServerConfig config;
  config.socket_path = "/tmp/kreg_serve.sock";
  std::size_t workers = kServeFromEnv;
  std::size_t cache_budget = kServeFromEnv;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::invalid_argument(arg + " requires a value");
        }
        return argv[++i];
      };
      if (arg == "--socket") {
        config.socket_path = value();
      } else if (arg == "--workers") {
        workers = parse_worker_count(value());
      } else if (arg == "--cache-budget") {
        cache_budget = parse_cache_budget(value());
      } else if (arg == "--device-budget") {
        config.scheduler.device_budget_bytes =
            kreg::parse_memory_budget(value());
      } else if (arg == "--devices") {
        config.scheduler.device_count = parse_worker_count(value());
      } else if (arg == "--deterministic") {
        config.scheduler.deterministic = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        throw std::invalid_argument("unknown argument '" + arg + "'");
      }
    }
    config.scheduler.workers = resolve_worker_count(workers, 0);
    config.scheduler.cache_budget_bytes = resolve_cache_budget(cache_budget);
    validate_socket_path(config.socket_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "kreg_serve: %s\n", e.what());
    usage(argv[0]);
    return 2;
  }

  try {
    Server server(std::move(config));
    std::printf("kreg_serve: listening on %s (workers=%zu cache=%zu B%s)\n",
                server.socket_path().c_str(),
                server.context().scheduler().config().workers,
                server.context().scheduler().config().cache_budget_bytes,
                server.context().scheduler().config().deterministic
                    ? ", deterministic"
                    : "");
    std::fflush(stdout);
    server.run();
    std::printf("kreg_serve: shut down\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "kreg_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
