// kreg_verify — static race & barrier-divergence verification of every
// named production launch on the SPMD device.
//
// Each scenario drives one production backend (regression window sweep in
// its scalar / lane-batched / k-block streamed / 2-D tiled forms, the KDE
// LSCV sweep, the k-NN LOOCV sweep, the OSCV sweep) on a SymbolicDevice,
// which traces every launch serially through the sanitizer's shadows and
// proves its access families disjoint over two symbolic thread identities
// (see src/spmd/verify/). Every scenario runs TWICE on different datasets:
// a launch whose conflict-relevant trace fingerprint differs across runs
// has data-dependent addressing, and its "verified" is demoted to
// "unproven" — the dynamic sanitizer (ctest -L sanitize) remains the
// coverage for those.
//
// Modes:
//   kreg_verify                      print the per-launch ledger
//   kreg_verify --write-ledger FILE  also write it to FILE
//   kreg_verify --check FILE         compare against a checked-in ledger:
//                                    exit 1 on any hazard, any launch whose
//                                    status regressed (verified → anything
//                                    else), or any launch missing from the
//                                    current run.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/grid.hpp"
#include "core/knn_sweep.hpp"
#include "core/oscv_sweep.hpp"
#include "core/spmd_kde.hpp"
#include "core/spmd_selector.hpp"
#include "data/dgp.hpp"
#include "rng/stream.hpp"
#include "spmd/verify/verifier.hpp"

namespace {

using kreg::BandwidthGrid;
using kreg::KernelType;
using kreg::Precision;
using kreg::SpmdGridSelector;
using kreg::SpmdKdeConfig;
using kreg::SpmdKdeSelector;
using kreg::SpmdSelectorConfig;
using kreg::data::Dataset;
using kreg::spmd::verify::SymbolicDevice;
using kreg::spmd::verify::VerifyReport;
using kreg::spmd::verify::VerifyStatus;

struct Scenario {
  std::string name;
  std::function<void(SymbolicDevice&, const Dataset&)> run;
};

struct LedgerEntry {
  std::string scenario;
  std::string kernel;
  VerifyStatus status = VerifyStatus::kUnproven;
  std::string reason;
};

Dataset make_data(std::size_t n, std::uint64_t seed) {
  kreg::rng::Stream s(seed);
  return kreg::data::paper_dgp(n, s);
}

std::vector<Scenario> scenarios() {
  const auto regress = [](SpmdSelectorConfig cfg) {
    return [cfg](SymbolicDevice& dev, const Dataset& d) {
      const BandwidthGrid grid = BandwidthGrid::default_for(d, 12);
      (void)SpmdGridSelector(dev, cfg).select(d, grid);
    };
  };
  SpmdSelectorConfig scalar;
  scalar.precision = Precision::kDouble;
  scalar.lane_width = 1;
  SpmdSelectorConfig batched_c4 = scalar;
  batched_c4.lane_width = 4;
  batched_c4.sigma = kreg::SigmaPolicy::kNone;
  SpmdSelectorConfig batched_c8 = scalar;
  batched_c8.lane_width = 8;
  batched_c8.sigma = kreg::SigmaPolicy::kNone;
  SpmdSelectorConfig batched_c16 = scalar;
  batched_c16.lane_width = 16;
  batched_c16.sigma = kreg::SigmaPolicy::kNone;
  SpmdSelectorConfig batched_sorted = scalar;
  batched_sorted.lane_width = 8;
  // data-dependent lane order: demotes
  batched_sorted.sigma = kreg::SigmaPolicy::kLength;
  SpmdSelectorConfig batched_poslen = scalar;
  batched_poslen.lane_width = 8;
  // two-key (position, length) order + contiguous-run transpose path +
  // software prefetch: exercises the locality-blocked batched launches
  batched_poslen.sigma = kreg::SigmaPolicy::kPositionLength;
  batched_poslen.prefetch_distance = 4;
  SpmdSelectorConfig batched_poslen_c16 = batched_poslen;
  batched_poslen_c16.lane_width = 16;
  SpmdSelectorConfig kblock = scalar;
  kblock.stream.k_block = 5;
  SpmdSelectorConfig tiled = scalar;
  tiled.stream.k_block = 5;
  tiled.stream.n_block = 96;

  const auto kde = [](SpmdKdeConfig cfg) {
    return [cfg](SymbolicDevice& dev, const Dataset& d) {
      const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
      (void)SpmdKdeSelector(dev, cfg).select(d.xs(), grid);
    };
  };
  SpmdKdeConfig kde_resident;
  SpmdKdeConfig kde_kblock;
  kde_kblock.stream.k_block = 4;
  SpmdKdeConfig kde_tiled;
  kde_tiled.stream.k_block = 4;
  kde_tiled.stream.n_block = 96;

  const auto knn = [](std::size_t k_block) {
    return [k_block](SymbolicDevice& dev, const Dataset& d) {
      const std::vector<std::size_t> kgrid =
          kreg::default_neighbor_grid(d.size(), 10);
      kreg::KnnDeviceConfig cfg;
      cfg.stream.k_block = k_block;
      (void)kreg::knn_cv_profile_device(dev, d, kgrid, cfg);
    };
  };
  const auto oscv = [](std::size_t k_block) {
    return [k_block](SymbolicDevice& dev, const Dataset& d) {
      const BandwidthGrid grid = BandwidthGrid::default_for(d, 10);
      kreg::OscvDeviceConfig cfg;
      cfg.stream.k_block = k_block;
      (void)kreg::oscv_profile_device(dev, d, grid.values(),
                                      KernelType::kEpanechnikov, cfg);
    };
  };

  return {
      {"regress_scalar", regress(scalar)},
      {"regress_batched_c4", regress(batched_c4)},
      {"regress_batched_c8", regress(batched_c8)},
      {"regress_batched_c16", regress(batched_c16)},
      {"regress_batched_sigma_sorted", regress(batched_sorted)},
      {"regress_batched_position_length", regress(batched_poslen)},
      {"regress_batched_position_length_c16", regress(batched_poslen_c16)},
      {"regress_kblock_streamed", regress(kblock)},
      {"regress_2d_tiled", regress(tiled)},
      {"kde_resident", kde(kde_resident)},
      {"kde_kblock_streamed", kde(kde_kblock)},
      {"kde_2d_tiled", kde(kde_tiled)},
      {"knn_device", knn(0)},
      {"knn_kblock_streamed", knn(4)},
      {"oscv_device", oscv(0)},
      {"oscv_kblock_streamed", oscv(4)},
  };
}

int severity(VerifyStatus s) {
  switch (s) {
    case VerifyStatus::kVerified:
      return 0;
    case VerifyStatus::kUnproven:
      return 1;
    case VerifyStatus::kHazard:
      return 2;
  }
  return 2;
}

/// Runs one scenario on two datasets and folds the per-launch reports into
/// per-(scenario, kernel) ledger entries, demoting launches whose
/// fingerprints differ across datasets.
void run_scenario(const Scenario& sc, std::size_t n,
                  std::vector<LedgerEntry>& ledger) {
  std::vector<std::vector<VerifyReport>> runs;
  for (std::uint64_t seed : {101ULL, 202ULL}) {
    SymbolicDevice dev;
    const Dataset d = make_data(n, seed);
    sc.run(dev, d);
    runs.push_back(dev.verifier().take_reports());
  }
  std::vector<VerifyReport> merged = std::move(runs[0]);
  const std::vector<VerifyReport>& second = runs[1];
  for (std::size_t i = 0; i < merged.size(); ++i) {
    VerifyReport& r = merged[i];
    const bool aligned = i < second.size() && second[i].kernel == r.kernel;
    if (!aligned) {
      // The launch sequence itself is data-dependent (e.g. a conditional
      // cleanup pass); nothing about the pair can be compared.
      if (r.status == VerifyStatus::kVerified) {
        r.status = VerifyStatus::kUnproven;
        r.reason = "launch sequence differs across datasets";
      }
      continue;
    }
    if (severity(second[i].status) > severity(r.status)) {
      r.status = second[i].status;
      r.reason = second[i].reason;
    }
    if (r.status == VerifyStatus::kVerified &&
        r.fingerprint != second[i].fingerprint) {
      r.status = VerifyStatus::kUnproven;
      r.reason =
          "data-dependent addressing (trace fingerprints differ across "
          "datasets) — falls back to the dynamic sanitizer";
    }
  }
  // Worst status per kernel name across every launch of the scenario.
  std::map<std::string, LedgerEntry> per_kernel;
  for (const VerifyReport& r : merged) {
    LedgerEntry& e = per_kernel[r.kernel];
    if (e.kernel.empty() || severity(r.status) > severity(e.status)) {
      e.scenario = sc.name;
      e.kernel = r.kernel;
      e.status = r.status;
      e.reason = r.reason;
    }
  }
  for (auto& [kernel, e] : per_kernel) {
    ledger.push_back(std::move(e));
  }
}

std::string ledger_line(const LedgerEntry& e) {
  return e.scenario + " " + e.kernel + " " +
         kreg::spmd::verify::to_string(e.status);
}

int write_ledger(const std::vector<LedgerEntry>& ledger,
                 const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "kreg_verify: cannot write '%s'\n", path.c_str());
    return 1;
  }
  out << "# kreg_verify per-launch ledger: <scenario> <kernel> <status>\n"
      << "# regenerate with: kreg_verify --write-ledger tools/"
         "verify_ledger.txt\n";
  for (const LedgerEntry& e : ledger) {
    out << ledger_line(e) << "\n";
  }
  return 0;
}

int check_ledger(const std::vector<LedgerEntry>& ledger,
                 const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "kreg_verify: cannot read '%s'\n", path.c_str());
    return 1;
  }
  std::map<std::pair<std::string, std::string>, std::string> want;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string scenario;
    std::string kernel;
    std::string status;
    if (fields >> scenario >> kernel >> status) {
      want[{scenario, kernel}] = status;
    }
  }
  int failures = 0;
  std::map<std::pair<std::string, std::string>, const LedgerEntry*> got;
  for (const LedgerEntry& e : ledger) {
    got[{e.scenario, e.kernel}] = &e;
  }
  for (const auto& [key, expected] : want) {
    const auto it = got.find(key);
    if (it == got.end()) {
      std::fprintf(stderr, "MISSING  %s %s (ledger says %s)\n",
                   key.first.c_str(), key.second.c_str(), expected.c_str());
      ++failures;
      continue;
    }
    const std::string actual =
        kreg::spmd::verify::to_string(it->second->status);
    const bool regressed = expected == "verified" && actual != "verified";
    if (it->second->status == VerifyStatus::kHazard || regressed) {
      std::fprintf(stderr, "FAIL     %s %s: ledger %s, now %s (%s)\n",
                   key.first.c_str(), key.second.c_str(), expected.c_str(),
                   actual.c_str(), it->second->reason.c_str());
      ++failures;
    }
  }
  for (const auto& [key, entry] : got) {
    if (want.find(key) == want.end()) {
      std::fprintf(stderr,
                   "NEW      %s %s: %s — not in the ledger; regenerate it\n",
                   key.first.c_str(), key.second.c_str(),
                   kreg::spmd::verify::to_string(entry->status));
      ++failures;
    }
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string write_path;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--write-ledger") == 0 && i + 1 < argc) {
      write_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: kreg_verify [--write-ledger FILE] [--check FILE]\n");
      return 2;
    }
  }

  const std::size_t n = 192;  // small enough to trace, covers every backend
  std::vector<LedgerEntry> ledger;
  std::size_t verified = 0;
  std::size_t unproven = 0;
  std::size_t hazards = 0;
  for (const Scenario& sc : scenarios()) {
    run_scenario(sc, n, ledger);
  }
  std::sort(ledger.begin(), ledger.end(),
            [](const LedgerEntry& a, const LedgerEntry& b) {
              return std::tie(a.scenario, a.kernel) <
                     std::tie(b.scenario, b.kernel);
            });
  for (const LedgerEntry& e : ledger) {
    switch (e.status) {
      case VerifyStatus::kVerified:
        ++verified;
        break;
      case VerifyStatus::kUnproven:
        ++unproven;
        break;
      case VerifyStatus::kHazard:
        ++hazards;
        break;
    }
    std::printf("%-10s %-32s %s%s%s\n",
                kreg::spmd::verify::to_string(e.status), e.kernel.c_str(),
                e.scenario.c_str(), e.reason.empty() ? "" : "  # ",
                e.reason.c_str());
  }
  std::printf("\n%zu launch kinds: %zu verified, %zu unproven, %zu hazard\n",
              ledger.size(), verified, unproven, hazards);

  int rc = hazards > 0 ? 1 : 0;
  if (!write_path.empty()) {
    rc |= write_ledger(ledger, write_path);
  }
  if (!check_path.empty()) {
    rc |= check_ledger(ledger, check_path);
  }
  return rc;
}
